//! Property-based tests for the metrics crate.

use pgrid_metrics::{Buckets, Cdf, CsvWriter, Histogram, Summary, Table, TimeSeries};
use proptest::prelude::*;

proptest! {
    /// The CDF is a proper distribution function: monotone, 0 below
    /// the minimum, 1 at and above the maximum.
    #[test]
    fn cdf_is_a_distribution(samples in prop::collection::vec(-1e4f64..1e4, 1..300)) {
        let cdf = Cdf::new(samples.clone());
        let min = cdf.min().unwrap();
        let max = cdf.max().unwrap();
        prop_assert_eq!(cdf.fraction_at(min - 1.0), 0.0);
        prop_assert_eq!(cdf.fraction_at(max), 1.0);
        let mut prev = 0.0;
        for i in 0..20 {
            let x = min + (max - min) * i as f64 / 19.0;
            let f = cdf.fraction_at(x);
            prop_assert!(f >= prev);
            prev = f;
        }
    }

    /// Quantiles are order statistics: quantile(q) is an actual sample
    /// and at least a fraction q of samples is ≤ it.
    #[test]
    fn quantiles_are_samples(samples in prop::collection::vec(0.0f64..1e5, 1..200), q in 0.01f64..1.0) {
        let cdf = Cdf::new(samples.clone());
        let x = cdf.quantile(q);
        prop_assert!(samples.iter().any(|s| (s - x).abs() < 1e-12));
        prop_assert!(cdf.fraction_at(x) + 1e-9 >= q);
    }

    /// Histogram conservation: bucketed + underflow + overflow = total.
    #[test]
    fn histogram_conserves(
        samples in prop::collection::vec(-50.0f64..150.0, 0..500),
        count in 1usize..40,
    ) {
        let h = Histogram::from_iter(
            Buckets::Linear { lo: 0.0, hi: 100.0, count },
            samples.iter().copied(),
        );
        let bucketed: u64 = (0..h.len()).map(|i| h.count(i)).sum();
        prop_assert_eq!(bucketed + h.underflow() + h.overflow(), samples.len() as u64);
    }

    /// Histogram bucket bounds tile the range without gaps.
    #[test]
    fn histogram_bounds_tile(count in 1usize..30, log in any::<bool>()) {
        let b = if log {
            Buckets::Log { lo: 0.5, hi: 512.0, count }
        } else {
            Buckets::Linear { lo: -3.0, hi: 7.0, count }
        };
        let h = Histogram::new(b);
        let rows: Vec<(f64, f64, u64)> = h.rows().collect();
        for w in rows.windows(2) {
            prop_assert!((w[0].1 - w[1].0).abs() < 1e-9, "gap between buckets");
        }
    }

    /// Summary mean always lies within [min, max].
    #[test]
    fn summary_mean_bounded(xs in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let s = Summary::from_iter(xs.iter().copied());
        prop_assert!(s.mean() >= s.min().unwrap() - 1e-6);
        prop_assert!(s.mean() <= s.max().unwrap() + 1e-6);
        prop_assert!(s.variance() >= 0.0);
    }

    /// Time series tail_mean interpolates between full mean and last
    /// value.
    #[test]
    fn series_tail_mean_in_range(values in prop::collection::vec(0.0f64..100.0, 1..100), frac in 0.01f64..1.0) {
        let s = TimeSeries::from_points(
            "x",
            values.iter().enumerate().map(|(i, v)| (i as f64, *v)).collect(),
        );
        let t = s.tail_mean(frac).unwrap();
        let lo = values.iter().cloned().fold(f64::MAX, f64::min);
        let hi = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(t >= lo - 1e-9 && t <= hi + 1e-9);
    }

    /// Table render always has rows + 2 lines and aligned width.
    #[test]
    fn table_render_shape(rows in prop::collection::vec(prop::collection::vec("[a-z0-9]{0,8}", 3), 0..20)) {
        let mut t = Table::new(["a", "b", "c"]);
        for r in &rows {
            t.row(r.clone());
        }
        let s = t.render();
        prop_assert_eq!(s.lines().count(), rows.len() + 2);
    }

    /// CSV row counts match and floats parse back.
    #[test]
    fn csv_round_trip(values in prop::collection::vec((0.0f64..1e6, 0.0f64..1e6), 0..50)) {
        let mut w = CsvWriter::new(&["x", "y"]);
        for (x, y) in &values {
            w.row_f64(&[*x, *y]);
        }
        let text = w.as_str();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), values.len() + 1);
        for (line, (x, y)) in lines[1..].iter().zip(&values) {
            let parts: Vec<&str> = line.split(',').collect();
            prop_assert_eq!(parts.len(), 2);
            let px: f64 = parts[0].parse().unwrap();
            let py: f64 = parts[1].parse().unwrap();
            prop_assert!((px - x).abs() < 1e-3);
            prop_assert!((py - y).abs() < 1e-3);
        }
    }
}
