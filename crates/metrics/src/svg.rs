//! Static SVG line charts for the figure regenerators — each `figN`
//! binary can emit the paper figure as a plot next to its table and
//! CSV (the CSV/table double as the accessible data view).
//!
//! Design follows the standard data-viz method: categorical hues in a
//! fixed, CVD-validated order (never cycled), thin 2px line marks,
//! recessive grid and axes, text in ink tokens (never the series
//! color), a legend plus direct end-of-line labels for every series,
//! and a light chart surface. Palette slots are the validated
//! reference palette; worst adjacent CVD ΔE 24.2 (validated with the
//! palette tool; the two sub-3:1 slots are relieved by the direct
//! labels and the accompanying tables).

use std::fmt::Write as _;

/// Fixed categorical slot order (light mode). Index = series position.
const SERIES_COLORS: [&str; 8] = [
    "#2a78d6", // blue
    "#1baf7a", // aqua
    "#eda100", // yellow
    "#008300", // green
    "#4a3aa7", // violet
    "#e34948", // red
    "#e87ba4", // magenta
    "#eb6834", // orange
];
const SURFACE: &str = "#fcfcfb";
const INK_PRIMARY: &str = "#0b0b0b";
const INK_SECONDARY: &str = "#52514e";
const GRID: &str = "#e4e3df";

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend / direct label.
    pub label: String,
    /// (x, y) points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

/// A line chart (the form of every figure in the paper: CDFs, time
/// series, cost-vs-dimensions curves).
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title (states the measure; a single series needs no
    /// legend because the title names it).
    pub title: String,
    /// X-axis label (units included).
    pub x_label: String,
    /// Y-axis label (units included).
    pub y_label: String,
    series: Vec<Series>,
    /// Fixed lower y bound (e.g. 80% for the paper's CDF figures);
    /// `None` = start at the data minimum (or 0 if positive data).
    pub y_min: Option<f64>,
    /// Fixed upper y bound; `None` = data maximum.
    pub y_max: Option<f64>,
}

/// "Nice" tick step ≈ range/target, snapped to 1/2/5×10^k.
fn nice_step(range: f64, target: usize) -> f64 {
    if range <= 0.0 {
        return 1.0;
    }
    let raw = range / target.max(1) as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let n = raw / mag;
    let snapped = if n <= 1.0 {
        1.0
    } else if n <= 2.0 {
        2.0
    } else if n <= 5.0 {
        5.0
    } else {
        10.0
    };
    snapped * mag
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{:.0}", v)
    } else {
        format!("{v:.2}")
    }
}

impl LineChart {
    /// A chart with no series yet.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            y_min: None,
            y_max: None,
        }
    }

    /// Adds a series (at most 8 — categorical slots are fixed, never
    /// cycled; fold further series into "other" upstream).
    ///
    /// # Panics
    ///
    /// Panics beyond 8 series or on an empty point list.
    pub fn series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        assert!(self.series.len() < SERIES_COLORS.len(), "too many series");
        assert!(!points.is_empty(), "series needs points");
        assert!(
            points.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
            "series points must be finite"
        );
        self.series.push(Series {
            label: label.into(),
            points,
        });
        self
    }

    /// Number of series added so far.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the chart has no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// # Panics
    ///
    /// Panics if no series were added.
    pub fn render_svg(&self) -> String {
        assert!(!self.series.is_empty(), "chart needs at least one series");
        let (w, h) = (760.0, 440.0);
        // Room on the right for direct end-of-line labels.
        let (ml, mr, mt, mb) = (64.0, 110.0, 54.0, 56.0);
        let (pw, ph) = (w - ml - mr, h - mt - mb);

        let xs = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0));
        let ys = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1));
        let x_min = xs.clone().fold(f64::INFINITY, f64::min);
        let x_max = xs.fold(f64::NEG_INFINITY, f64::max);
        let data_y_min = ys.clone().fold(f64::INFINITY, f64::min);
        let data_y_max = ys.fold(f64::NEG_INFINITY, f64::max);
        let y_min = self
            .y_min
            .unwrap_or(if data_y_min > 0.0 { 0.0 } else { data_y_min });
        let mut y_max = self.y_max.unwrap_or(data_y_max);
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        let x_span = if (x_max - x_min).abs() < 1e-12 {
            1.0
        } else {
            x_max - x_min
        };
        let px = |x: f64| ml + (x - x_min) / x_span * pw;
        let py = |y: f64| mt + ph - (y - y_min) / (y_max - y_min) * ph;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{w}" height="{h}" fill="{SURFACE}"/>"#);
        // Title (primary ink).
        let _ = write!(
            svg,
            r#"<text x="{ml}" y="24" font-size="15" font-weight="600" fill="{INK_PRIMARY}">{}</text>"#,
            xml_escape(&self.title)
        );

        // Recessive horizontal gridlines + y ticks.
        let ystep = nice_step(y_max - y_min, 5);
        let mut yt = (y_min / ystep).ceil() * ystep;
        while yt <= y_max + 1e-9 {
            let yy = py(yt);
            let _ = write!(
                svg,
                r#"<line x1="{ml}" y1="{yy:.1}" x2="{:.1}" y2="{yy:.1}" stroke="{GRID}" stroke-width="1"/>"#,
                ml + pw
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_SECONDARY}" text-anchor="end">{}</text>"#,
                ml - 8.0,
                yy + 4.0,
                fmt_tick(yt)
            );
            yt += ystep;
        }
        // X ticks along the recessive baseline.
        let xstep = nice_step(x_span, 6);
        let mut xt = (x_min / xstep).ceil() * xstep;
        let baseline = mt + ph;
        let _ = write!(
            svg,
            r#"<line x1="{ml}" y1="{baseline:.1}" x2="{:.1}" y2="{baseline:.1}" stroke="{INK_SECONDARY}" stroke-width="1"/>"#,
            ml + pw
        );
        while xt <= x_max + 1e-9 {
            let xx = px(xt);
            let _ = write!(
                svg,
                r#"<text x="{xx:.1}" y="{:.1}" font-size="11" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
                baseline + 18.0,
                fmt_tick(xt)
            );
            xt += xstep;
        }
        // Axis labels (secondary ink).
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="12" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
            ml + pw / 2.0,
            h - 14.0,
            xml_escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{:.1}" font-size="12" fill="{INK_SECONDARY}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
            mt + ph / 2.0,
            mt + ph / 2.0,
            xml_escape(&self.y_label)
        );

        // Legend row (only for >= 2 series; one series is named by the
        // title). Colored swatch carries identity; text stays in ink.
        if self.series.len() >= 2 {
            let mut lx = ml;
            let ly = 40.0;
            for (i, s) in self.series.iter().enumerate() {
                let c = SERIES_COLORS[i];
                let _ = write!(
                    svg,
                    r#"<rect x="{lx:.1}" y="{:.1}" width="14" height="3.5" rx="1.75" fill="{c}"/>"#,
                    ly - 4.0
                );
                let _ = write!(
                    svg,
                    r#"<text x="{:.1}" y="{ly:.1}" font-size="12" fill="{INK_PRIMARY}">{}</text>"#,
                    lx + 19.0,
                    xml_escape(&s.label)
                );
                lx += 19.0 + 7.5 * s.label.len() as f64 + 22.0;
            }
        }

        // Data marks: thin 2px lines, plus a direct label at each
        // line's end (identity never rides on color alone).
        for (i, s) in self.series.iter().enumerate() {
            let c = SERIES_COLORS[i];
            let mut d = String::new();
            for (j, (x, y)) in s.points.iter().enumerate() {
                let _ = write!(
                    d,
                    "{}{:.1},{:.1}",
                    if j == 0 { "M" } else { " L" },
                    px(*x),
                    py(y.clamp(y_min, y_max))
                );
            }
            let _ = write!(
                svg,
                r#"<path d="{d}" fill="none" stroke="{c}" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>"#
            );
            let (lx, ly) = *s.points.last().unwrap();
            // Stagger end labels vertically if they would collide.
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_PRIMARY}">{}</text>"#,
                px(lx) + 6.0,
                py(ly.clamp(y_min, y_max)) + 4.0 + 12.0 * label_offset(i, self.series.len()),
                xml_escape(&s.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Writes the SVG to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render_svg())
    }
}

/// Small deterministic vertical stagger so end-of-line labels of
/// adjacent series don't overprint when lines converge.
fn label_offset(i: usize, n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        i as f64 - (n as f64 - 1.0) / 2.0
    }
}

/// A 2-D rectangle map: renders CAN zones (or any set of labeled
/// axis-aligned boxes in the unit square) as an SVG. Fills stay on the
/// surface; identity is carried by the per-box label, so no categorical
/// palette is needed (boxes are structure, not series).
#[derive(Debug, Clone)]
pub struct RectMap {
    /// Map title.
    pub title: String,
    rects: Vec<(f64, f64, f64, f64, String)>,
}

impl RectMap {
    /// An empty map.
    pub fn new(title: impl Into<String>) -> Self {
        RectMap {
            title: title.into(),
            rects: Vec::new(),
        }
    }

    /// Adds a box `[x0, x1) x [y0, y1)` in unit coordinates with a
    /// center label.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate or out-of-unit box.
    pub fn rect(
        &mut self,
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        label: impl Into<String>,
    ) -> &mut Self {
        assert!(x0 < x1 && y0 < y1, "degenerate rect");
        assert!((0.0..=1.0).contains(&x0) && x1 <= 1.0 && (0.0..=1.0).contains(&y0) && y1 <= 1.0);
        self.rects.push((x0, y0, x1, y1, label.into()));
        self
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Renders the map as a standalone SVG (y grows upward, as in the
    /// paper's CAN figures).
    pub fn render_svg(&self) -> String {
        let (w, h) = (520.0, 560.0);
        let (m, title_h) = (20.0, 34.0);
        let side = w - 2.0 * m;
        let ox = m;
        let oy = title_h + 6.0;
        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{w}" height="{h}" fill="{SURFACE}"/>"#);
        let _ = write!(
            svg,
            r#"<text x="{m}" y="24" font-size="15" font-weight="600" fill="{INK_PRIMARY}">{}</text>"#,
            xml_escape(&self.title)
        );
        for (x0, y0, x1, y1, label) in &self.rects {
            // Flip y: data y=0 is the bottom edge.
            let rx = ox + x0 * side;
            let ry = oy + (1.0 - y1) * side;
            let rw = (x1 - x0) * side;
            let rh = (y1 - y0) * side;
            let _ = write!(
                svg,
                r#"<rect x="{rx:.1}" y="{ry:.1}" width="{rw:.1}" height="{rh:.1}" fill="none" stroke="{INK_SECONDARY}" stroke-width="1"/>"#
            );
            if rw > 26.0 && rh > 16.0 {
                let _ = write!(
                    svg,
                    r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{INK_PRIMARY}" text-anchor="middle">{}</text>"#,
                    rx + rw / 2.0,
                    ry + rh / 2.0 + 4.0,
                    xml_escape(label)
                );
            }
        }
        // Unit-square frame.
        let _ = write!(
            svg,
            r#"<rect x="{ox}" y="{oy}" width="{side}" height="{side}" fill="none" stroke="{INK_PRIMARY}" stroke-width="1.5"/>"#
        );
        svg.push_str("</svg>");
        svg
    }

    /// Writes the SVG to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render_svg())
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> LineChart {
        let mut c = LineChart::new("Broken links over time", "time (s)", "broken links");
        c.series("Vanilla", vec![(0.0, 0.0), (100.0, 10.0), (200.0, 12.0)]);
        c.series("Compact", vec![(0.0, 0.0), (100.0, 30.0), (200.0, 42.0)]);
        c.series("Adaptive", vec![(0.0, 0.0), (100.0, 15.0), (200.0, 18.0)]);
        c
    }

    #[test]
    fn renders_valid_svg_shell() {
        let svg = demo().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 3, "one path per series");
    }

    #[test]
    fn legend_present_for_multiple_series_absent_for_one() {
        let svg = demo().render_svg();
        // Legend swatches (rects beyond the surface rect).
        assert!(svg.matches("<rect").count() >= 4);
        let mut single = LineChart::new("One", "x", "y");
        single.series("only", vec![(0.0, 1.0), (1.0, 2.0)]);
        let svg1 = single.render_svg();
        assert_eq!(
            svg1.matches("<rect").count(),
            1,
            "single series: surface only, no legend swatches"
        );
    }

    #[test]
    fn every_series_gets_a_direct_label() {
        let svg = demo().render_svg();
        assert_eq!(svg.matches(">Vanilla<").count(), 2, "legend + end label");
        assert_eq!(svg.matches(">Compact<").count(), 2);
    }

    #[test]
    fn fixed_slot_order_is_respected() {
        let svg = demo().render_svg();
        let blue = svg.find("#2a78d6").unwrap();
        let aqua = svg.find("#1baf7a").unwrap();
        let yellow = svg.find("#eda100").unwrap();
        assert!(
            blue < aqua && aqua < yellow,
            "slots assigned in fixed order"
        );
    }

    #[test]
    fn y_bounds_can_pin_the_cdf_window() {
        let mut c = LineChart::new("CDF", "wait", "%");
        c.y_min = Some(80.0);
        c.y_max = Some(100.0);
        c.series("can-het", vec![(0.0, 86.0), (1000.0, 99.0)]);
        let svg = c.render_svg();
        assert!(svg.contains(">80<"));
        assert!(svg.contains(">100<"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = LineChart::new("a<b & c", "x", "y");
        c.series("s>1", vec![(0.0, 0.0), (1.0, 1.0)]);
        let svg = c.render_svg();
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn nice_steps_are_125() {
        assert_eq!(nice_step(100.0, 5), 20.0);
        assert_eq!(nice_step(7.0, 5), 2.0);
        assert_eq!(nice_step(0.05, 5), 0.01);
        assert_eq!(nice_step(50000.0, 6), 10000.0);
    }

    #[test]
    #[should_panic(expected = "too many series")]
    fn rejects_ninth_series() {
        let mut c = LineChart::new("x", "x", "y");
        for i in 0..9 {
            c.series(format!("s{i}"), vec![(0.0, 0.0), (1.0, 1.0)]);
        }
    }

    #[test]
    fn rect_map_renders_all_boxes() {
        let mut m = RectMap::new("zones");
        m.rect(0.0, 0.0, 0.5, 1.0, "A");
        m.rect(0.5, 0.0, 1.0, 0.5, "B");
        m.rect(0.5, 0.5, 1.0, 1.0, "C");
        let svg = m.render_svg();
        // surface + 3 zone rects + frame
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains(">A<") && svg.contains(">B<") && svg.contains(">C<"));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rect_map_rejects_degenerate() {
        RectMap::new("x").rect(0.5, 0.0, 0.5, 1.0, "bad");
    }

    #[test]
    fn save_writes_file() {
        let p = std::env::temp_dir().join("pgrid_svg_test.svg");
        demo().save(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.contains("</svg>"));
    }
}
