//! Minimal CSV emission (no external serializer needed): experiment
//! binaries write their raw series next to the printed tables so plots
//! can be regenerated offline.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Builds CSV text in memory; write it out with [`CsvWriter::save`].
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    buf: String,
    columns: usize,
}

fn escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

impl CsvWriter {
    /// A writer with the given header row.
    pub fn new(headers: &[&str]) -> Self {
        let mut w = CsvWriter {
            buf: String::new(),
            columns: headers.len(),
        };
        w.push_row(headers.iter().map(|s| s.to_string()));
        w
    }

    fn push_row(&mut self, cells: impl IntoIterator<Item = String>) {
        let mut n = 0;
        for (i, c) in cells.into_iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&escape(&c));
            n = i + 1;
        }
        assert_eq!(n, self.columns, "CSV row arity mismatch");
        self.buf.push('\n');
    }

    /// Appends a row of string cells.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the header.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.push_row(cells.iter().map(|s| s.to_string()));
        self
    }

    /// Appends a row of floats (formatted with up to 6 significant
    /// decimals, trailing zeros trimmed).
    pub fn row_f64(&mut self, cells: &[f64]) -> &mut Self {
        self.push_row(cells.iter().map(|x| {
            let mut s = format!("{x:.6}");
            if s.contains('.') {
                while s.ends_with('0') {
                    s.pop();
                }
                if s.ends_with('.') {
                    s.pop();
                }
            }
            s
        }));
        self
    }

    /// Appends a row with a leading label followed by floats.
    pub fn row_labeled(&mut self, label: &str, cells: &[f64]) -> &mut Self {
        let mut all = vec![escape(label)];
        for x in cells {
            let _ = write!(all.last_mut().unwrap(), ""); // no-op, keep shape
            all.push(format!("{x}"));
        }
        self.push_row(all);
        self
    }

    /// The CSV text accumulated so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Writes the CSV to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, &self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut w = CsvWriter::new(&["t", "broken"]);
        w.row_f64(&[0.0, 3.0]);
        w.row_f64(&[250.0, 17.5]);
        let s = w.as_str();
        assert_eq!(s, "t,broken\n0,3\n250,17.5\n");
    }

    #[test]
    fn escaping_commas_and_quotes() {
        let mut w = CsvWriter::new(&["label", "v"]);
        w.row(&["a,b", "1"]);
        w.row(&["say \"hi\"", "2"]);
        let s = w.as_str();
        assert!(s.contains("\"a,b\",1"));
        assert!(s.contains("\"say \"\"hi\"\"\",2"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        CsvWriter::new(&["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn labeled_rows() {
        let mut w = CsvWriter::new(&["scheme", "d", "kb"]);
        w.row_labeled("Vanilla", &[5.0, 100.25]);
        assert!(w.as_str().contains("Vanilla,5,100.25"));
    }

    #[test]
    fn trailing_zero_trimming() {
        let mut w = CsvWriter::new(&["x"]);
        w.row_f64(&[1.500000]);
        assert_eq!(w.as_str().lines().last().unwrap(), "1.5");
    }
}
