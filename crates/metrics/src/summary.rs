//! Streaming summary statistics (count / mean / variance / extrema)
//! via Welford's online algorithm.

/// Online summary of a stream of f64 observations.
///
/// ```
/// use pgrid_metrics::Summary;
/// let s = Summary::from_iter([1.0, 2.0, 3.0]);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Builds a summary from an iterator.
    #[allow(clippy::should_implement_trait)] // deliberate inherent name
    pub fn from_iter(xs: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Summary::new();
        for x in xs {
            s.add(x);
        }
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (None when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (None when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extrema() {
        let s = Summary::from_iter([3.0, -1.0, 10.0]);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all = Summary::from_iter(xs.iter().copied());
        let mut a = Summary::from_iter(xs[..37].iter().copied());
        let b = Summary::from_iter(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_iter([1.0, 2.0]);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_iter([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
    }
}
