//! Empirical cumulative distribution functions.
//!
//! Figures 5 and 6 plot "cumulative distributions for job wait times"
//! with the Y axis starting at 80% — the interesting action is in the
//! tail, so [`Cdf`] exposes both forward evaluation (fraction ≤ x) and
//! inverse evaluation (percentiles).

/// An empirical CDF over f64 samples.
///
/// ```
/// use pgrid_metrics::Cdf;
/// let cdf = Cdf::new(vec![0.0, 0.0, 10.0, 100.0]);
/// assert_eq!(cdf.fraction_zero(), 0.5);
/// assert_eq!(cdf.quantile(0.75), 10.0);
/// assert_eq!(cdf.fraction_at(50.0), 0.75);
/// ```
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not be NaN"
        );
        samples.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`, in [0, 1]. Zero for an empty CDF.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: first index with sample > x.
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-th quantile (0 ≤ q ≤ 1), by the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics on an empty CDF or q outside [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean (None when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Samples the CDF at evenly spaced x values from 0 to `x_max`,
    /// returning `(x, percent ≤ x)` pairs — the series plotted in
    /// Figures 5/6.
    pub fn curve(&self, x_max: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        (0..points)
            .map(|i| {
                // Pin the endpoint: x_max * i / (points - 1) can round
                // below x_max at i = points - 1, silently excluding the
                // maximal sample from the final curve point.
                let x = if i == points - 1 {
                    x_max
                } else {
                    x_max * i as f64 / (points - 1) as f64
                };
                (x, 100.0 * self.fraction_at(x))
            })
            .collect()
    }

    /// Fraction of samples that are exactly zero (jobs that never
    /// waited — the bulk of Figures 5/6's distributions).
    pub fn fraction_zero(&self) -> f64 {
        self.fraction_at(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf() -> Cdf {
        Cdf::new(vec![3.0, 1.0, 2.0, 4.0, 5.0])
    }

    #[test]
    fn fraction_at_counts_inclusive() {
        let c = cdf();
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(1.0), 0.2);
        assert_eq!(c.fraction_at(3.0), 0.6);
        assert_eq!(c.fraction_at(10.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = cdf();
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(0.2), 1.0);
        assert_eq!(c.quantile(0.5), 3.0);
        assert_eq!(c.quantile(1.0), 5.0);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at(1.0), 0.0);
        assert_eq!(c.mean(), None);
        assert_eq!(c.min(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn mean_min_max() {
        let c = cdf();
        assert_eq!(c.mean(), Some(3.0));
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(5.0));
    }

    #[test]
    fn curve_spans_range() {
        let c = cdf();
        let pts = c.curve(5.0, 6);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], (0.0, 0.0));
        assert_eq!(pts[5].0, 5.0);
        assert_eq!(pts[5].1, 100.0);
        // Monotone non-decreasing.
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn fraction_zero_counts_exact_zeros() {
        let c = Cdf::new(vec![0.0, 0.0, 1.0, 2.0]);
        assert_eq!(c.fraction_zero(), 0.5);
    }

    #[test]
    fn duplicate_heavy_distribution() {
        let mut v = vec![0.0; 95];
        v.extend([10.0, 20.0, 30.0, 40.0, 50.0]);
        let c = Cdf::new(v);
        assert_eq!(c.fraction_at(0.0), 0.95);
        assert_eq!(c.quantile(0.95), 0.0);
        assert_eq!(c.quantile(0.99), 40.0);
    }
}
