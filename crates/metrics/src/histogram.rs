//! Fixed-bucket histograms with optional logarithmic bucketing —
//! wait-time distributions span five orders of magnitude, so linear
//! buckets waste resolution where the paper's CDFs are interesting.

/// Bucketing strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Buckets {
    /// `count` equal-width buckets over `[lo, hi)`.
    Linear {
        /// Lower bound of the first bucket.
        lo: f64,
        /// Upper bound of the last bucket.
        hi: f64,
        /// Number of buckets.
        count: usize,
    },
    /// `count` geometrically growing buckets over `[lo, hi)`; `lo`
    /// must be positive.
    Log {
        /// Lower bound of the first bucket (must be > 0).
        lo: f64,
        /// Upper bound of the last bucket.
        hi: f64,
        /// Number of buckets.
        count: usize,
    },
}

impl Buckets {
    fn count(&self) -> usize {
        match *self {
            Buckets::Linear { count, .. } | Buckets::Log { count, .. } => count,
        }
    }

    fn validate(&self) {
        match *self {
            Buckets::Linear { lo, hi, count } => {
                assert!(count > 0 && lo < hi, "invalid linear buckets");
            }
            Buckets::Log { lo, hi, count } => {
                assert!(
                    count > 0 && 0.0 < lo && lo < hi,
                    "invalid log buckets (lo must be positive)"
                );
            }
        }
    }

    /// Bucket index of a value inside the range, or `None` when it
    /// falls outside.
    fn index(&self, x: f64) -> Option<usize> {
        match *self {
            Buckets::Linear { lo, hi, count } => {
                if x < lo || x >= hi {
                    None
                } else {
                    Some((((x - lo) / (hi - lo)) * count as f64).min(count as f64 - 1.0) as usize)
                }
            }
            Buckets::Log { lo, hi, count } => {
                if x < lo || x >= hi {
                    None
                } else {
                    let f = (x / lo).ln() / (hi / lo).ln();
                    Some(((f * count as f64).min(count as f64 - 1.0)) as usize)
                }
            }
        }
    }

    /// Bounds `[lo, hi)` of bucket `i`.
    pub fn bounds(&self, i: usize) -> (f64, f64) {
        match *self {
            Buckets::Linear { lo, hi, count } => {
                let w = (hi - lo) / count as f64;
                (lo + w * i as f64, lo + w * (i + 1) as f64)
            }
            Buckets::Log { lo, hi, count } => {
                let r = (hi / lo).powf(1.0 / count as f64);
                (lo * r.powi(i as i32), lo * r.powi(i as i32 + 1))
            }
        }
    }
}

/// A histogram with underflow/overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Buckets,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// An empty histogram with the given bucketing.
    pub fn new(buckets: Buckets) -> Self {
        buckets.validate();
        Histogram {
            counts: vec![0; buckets.count()],
            buckets,
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Convenience: log buckets suitable for wait times in seconds
    /// (1 s .. ~28 h across 24 buckets, with a dedicated underflow for
    /// zero waits).
    pub fn wait_times() -> Self {
        Histogram::new(Buckets::Log {
            lo: 1.0,
            hi: 100_000.0,
            count: 24,
        })
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.total += 1;
        match self.buckets.index(x) {
            Some(i) => self.counts[i] += 1,
            None => {
                let below = match self.buckets {
                    Buckets::Linear { lo, .. } | Buckets::Log { lo, .. } => x < lo,
                };
                if below {
                    self.underflow += 1;
                } else {
                    self.overflow += 1;
                }
            }
        }
    }

    /// Builds a histogram from an iterator.
    pub fn from_iter(buckets: Buckets, xs: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Histogram::new(buckets);
        for x in xs {
            h.add(x);
        }
        h
    }

    /// Total observations (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the first bucket.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the last bucket's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the histogram holds no observations.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterator over `(lo, hi, count)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| {
            let (lo, hi) = self.buckets.bounds(i);
            (lo, hi, self.counts[i])
        })
    }

    /// A terminal-friendly bar rendering.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("{:>24}  {}\n", "(under)", self.underflow));
        }
        for (lo, hi, c) in self.rows() {
            let bar = "#".repeat(((c as f64 / max as f64) * width as f64).round() as usize);
            out.push_str(&format!("[{lo:>9.1}, {hi:>9.1})  {c:>7}  {bar}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>24}  {}\n", "(over)", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bucketing() {
        let mut h = Histogram::new(Buckets::Linear {
            lo: 0.0,
            hi: 10.0,
            count: 5,
        });
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0] {
            h.add(x);
        }
        assert_eq!(h.count(0), 2); // 0.0, 1.9
        assert_eq!(h.count(1), 1); // 2.0
        assert_eq!(h.count(4), 1); // 9.99
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn log_bucketing_is_geometric() {
        let h = Histogram::new(Buckets::Log {
            lo: 1.0,
            hi: 1000.0,
            count: 3,
        });
        let (lo0, hi0) = h.buckets.bounds(0);
        let (lo1, hi1) = h.buckets.bounds(1);
        let (lo2, hi2) = h.buckets.bounds(2);
        assert!((lo0 - 1.0).abs() < 1e-9);
        assert!((hi0 - 10.0).abs() < 1e-9);
        assert!((lo1 - 10.0).abs() < 1e-9);
        assert!((hi1 - 100.0).abs() < 1e-9);
        assert!((lo2 - 100.0).abs() < 1e-9);
        assert!((hi2 - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn log_bucket_assignment() {
        let mut h = Histogram::new(Buckets::Log {
            lo: 1.0,
            hi: 1000.0,
            count: 3,
        });
        for x in [1.0, 5.0, 50.0, 500.0, 0.5] {
            h.add(x);
        }
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn counts_are_conserved() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.137).collect();
        let h = Histogram::from_iter(
            Buckets::Linear {
                lo: 0.0,
                hi: 100.0,
                count: 17,
            },
            xs.iter().copied(),
        );
        let bucketed: u64 = (0..h.len()).map(|i| h.count(i)).sum();
        assert_eq!(bucketed + h.underflow() + h.overflow(), 1000);
    }

    #[test]
    fn wait_time_histogram_handles_zeros() {
        let mut h = Histogram::wait_times();
        h.add(0.0);
        h.add(3600.0);
        assert_eq!(h.underflow(), 1, "zero waits land in underflow");
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn render_has_one_line_per_bucket() {
        let h = Histogram::from_iter(
            Buckets::Linear {
                lo: 0.0,
                hi: 4.0,
                count: 4,
            },
            [0.5, 1.5, 1.6, 2.5],
        );
        let s = h.render(20);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "invalid log buckets")]
    fn log_buckets_reject_zero_lo() {
        Histogram::new(Buckets::Log {
            lo: 0.0,
            hi: 10.0,
            count: 4,
        });
    }
}
