//! Measurement and reporting utilities: CDFs (the paper's Figures 5–6
//! are wait-time CDFs), histograms, summary statistics, time series
//! (Figure 7), ASCII tables and CSV export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod csv;
pub mod histogram;
pub mod series;
pub mod summary;
pub mod svg;
pub mod table;

pub use cdf::Cdf;
pub use csv::CsvWriter;
pub use histogram::{Buckets, Histogram};
pub use series::TimeSeries;
pub use summary::Summary;
pub use svg::{LineChart, RectMap};
pub use table::Table;
