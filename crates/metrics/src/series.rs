//! Time series for evolution plots (Figure 7: broken links over time).

/// A named (time, value) series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Series label (e.g. "Vanilla", "Compact-1000").
    pub label: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Builds a series from points (must be time-ordered).
    ///
    /// # Panics
    ///
    /// Panics if timestamps are not non-decreasing.
    pub fn from_points(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "time series must be time-ordered"
        );
        TimeSeries {
            label: label.into(),
            points,
        }
    }

    /// Appends a point (time must not decrease).
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&(t, _)) = self.points.last() {
            assert!(time >= t, "time series must be time-ordered");
        }
        self.points.push((time, value));
    }

    /// The points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values over the final `fraction` of the series — the
    /// "levels out" steady-state reading of Figure 7.
    pub fn tail_mean(&self, fraction: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&fraction));
        if self.points.is_empty() {
            return None;
        }
        let start = ((1.0 - fraction) * self.points.len() as f64).floor() as usize;
        let tail = &self.points[start.min(self.points.len() - 1)..];
        Some(tail.iter().map(|(_, v)| v).sum::<f64>() / tail.len() as f64)
    }

    /// Largest value in the series.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .max_by(|a, b| a.total_cmp(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_preserves_order() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        s.push(1.0, 2.0);
        s.push(1.0, 3.0); // equal time allowed
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn push_rejects_backwards_time() {
        let mut s = TimeSeries::new("x");
        s.push(5.0, 1.0);
        s.push(4.0, 1.0);
    }

    #[test]
    fn tail_mean_reads_steady_state() {
        let s = TimeSeries::from_points(
            "x",
            vec![(0.0, 0.0), (1.0, 50.0), (2.0, 100.0), (3.0, 100.0)],
        );
        assert_eq!(s.tail_mean(0.5), Some(100.0));
        assert_eq!(s.tail_mean(1.0), Some(62.5));
    }

    #[test]
    fn tail_mean_of_empty_is_none() {
        assert_eq!(TimeSeries::new("x").tail_mean(0.5), None);
    }

    #[test]
    fn max_value() {
        let s = TimeSeries::from_points("x", vec![(0.0, 3.0), (1.0, 7.0), (2.0, 5.0)]);
        assert_eq!(s.max_value(), Some(7.0));
    }
}
