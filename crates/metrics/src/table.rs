//! Plain-text tables: the benchmark binaries print each figure's data
//! as an aligned table (rows = x values, columns = series).

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the header.
    pub fn row(&mut self, cells: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with a fixed number of decimals (helper for table
/// cells).
pub fn fmt_f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["dim", "vanilla", "compact"]);
        t.row(["5", "100.0", "8.0"]);
        t.row(["14", "1200.5", "55.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("vanilla"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].contains("1200.5"));
        // All data lines same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        Table::new(["a", "b"]).row(["1"]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(10.0, 0), "10");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }
}
