//! The `pgrid` subcommands.

use crate::args::Args;
use pgrid::prelude::*;
use pgrid::types::DimensionLayout;
use pgrid::workload::trace;
use std::fmt::Write as _;

/// `pgrid help`
pub fn help() -> String {
    "\
pgrid — P2P computing-element-heterogeneous grid simulator
(reproduction of Lee/Keleher/Sussman, IEEE CLUSTER 2011)

USAGE:
  pgrid simulate [--nodes N] [--jobs N] [--dims 5|8|11|14] [--interarrival S]
                 [--ratio R] [--scheduler het|hom|central|all] [--seed S]
                 [--shared-gpus] [--sf SF] [--shards N]
      Run one load-balancing simulation and print wait-time statistics.
      --shards runs the zone-sharded engine; results are bit-identical
      for every shard count.

  pgrid churn    [--nodes N] [--dims D] [--scheme vanilla|compact|adaptive|all]
                 [--gap S] [--duration S] [--loss P] [--graceful F] [--seed S]
      Run one CAN maintenance simulation under churn and print broken-link
      and message-cost statistics.

  pgrid chaos    [--scenario flash-crowd|rolling-partition|lossy-churn|all]
                 [--scheme vanilla|compact|adaptive|all] [--nodes N] [--seed S]
      Run scripted fault scenarios through the chaos harness and print the
      resilience table; exits non-zero on any invariant violation.

  pgrid scenarios [--list] [--scenario NAME] [--seed S] [--quick] [--shards N]
      Run the named adversarial scenario library (diurnal waves, flash
      crowds, rack storms, stragglers, gray failures, plus the chaos trio)
      through the DST oracle harness, scheme vs scheme; --scenario filters
      by substring (zero matches is an error), --list prints the registry.

  pgrid detector [--seed S] [--quick]
      Sweep asymmetric link stress against process-freeze length, running
      every cell under both the fixed-timeout and the adaptive suspicion
      failure detectors; prints the false-positive / detection-latency
      table and errors if the adaptive rule is ever worse.

  pgrid fuzz     [--seeds N] [--seed S] [--budget SECS] [--out DIR] [--shards N]
  pgrid fuzz     --replay FILE
      Fuzz random fault schedules through the cross-layer invariant oracles
      (CAN zone tiling / neighbor symmetry / take-over / quiescence, scheduler
      job conservation, event-queue monotonicity). On a violation the schedule
      is shrunk to a near-minimal repro and written as a replayable trace
      under DIR; exits non-zero. --replay re-executes a saved trace and
      checks it against its recorded digest.

  pgrid trace gen-nodes  [--count N] [--dims D] [--seed S] [--out FILE]
  pgrid trace gen-jobs   [--count N] [--dims D] [--ratio R] [--interarrival S]
                         [--seed S] [--out FILE]
  pgrid trace replay     --nodes FILE --jobs FILE [--scheduler het|hom|central]
      Generate reusable workload traces, or replay saved traces.

  pgrid info
      Print the built-in paper scenario and experiment inventory.
"
    .to_string()
}

/// `pgrid info`
pub fn info() -> String {
    let s = default_scenario();
    let mut out = String::new();
    let _ = writeln!(out, "paper scenario defaults:");
    let _ = writeln!(out, "  nodes              {}", s.nodes);
    let _ = writeln!(out, "  jobs               {}", s.jobs);
    let _ = writeln!(out, "  CAN dimensions     {}", s.dims);
    let _ = writeln!(out, "  GPU families       {}", s.gpu_slots());
    let _ = writeln!(
        out,
        "  inter-arrival      {} s",
        s.job_gen.mean_interarrival
    );
    let _ = writeln!(out, "  constraint ratio   {}", s.job_gen.constraint_ratio);
    let _ = writeln!(out, "  stopping factor    {}", s.stopping_factor);
    let _ = writeln!(out, "  AI refresh period  {} s", s.ai_refresh_period);
    let _ = writeln!(out, "  seed               {}", s.seed);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "experiments (see crates/bench): fig5 fig6 fig7 fig8 scaling_fit ablation"
    );
    let _ = writeln!(
        out,
        "extensions: sf_sweep lossy_network routing_under_churn future_gpus contention_model chaos"
    );
    out
}

fn scenario_from(args: &Args) -> Result<LoadBalanceScenario, String> {
    let mut s = default_scenario();
    s.nodes = args.get_or("nodes", s.nodes)?;
    s.jobs = args.get_or("jobs", s.jobs)?;
    let dims: usize = args.get_or("dims", s.dims)?;
    if dims < 5 || !(dims - 5).is_multiple_of(3) || dims > 14 {
        return Err(format!("--dims must be 5, 8, 11 or 14 (got {dims})"));
    }
    if dims != s.dims {
        let slots = ((dims - 5) / 3) as u8;
        s.dims = dims;
        s.node_gen = NodeGenConfig::paper_defaults(slots);
        s.job_gen = JobGenConfig::paper_defaults(
            slots,
            s.job_gen.constraint_ratio,
            s.job_gen.mean_interarrival,
        );
    }
    s.job_gen.mean_interarrival = args.get_or("interarrival", s.job_gen.mean_interarrival)?;
    s.job_gen.constraint_ratio = args.get_or("ratio", s.job_gen.constraint_ratio)?;
    s.stopping_factor = args.get_or("sf", s.stopping_factor)?;
    s.seed = args.get_or("seed", s.seed)?;
    if args.switch("shared-gpus") {
        s.node_gen.shared_gpus = true;
    }
    Ok(s)
}

fn parse_schedulers(spec: &str) -> Result<Vec<SchedulerChoice>, String> {
    match spec {
        "het" | "can-het" => Ok(vec![SchedulerChoice::CanHet]),
        "hom" | "can-hom" => Ok(vec![SchedulerChoice::CanHom]),
        "central" => Ok(vec![SchedulerChoice::Central]),
        "all" => Ok(SchedulerChoice::ALL.to_vec()),
        other => Err(format!("unknown scheduler '{other}'")),
    }
}

fn render_sim_results(results: &[SimResult]) -> String {
    let mut out = String::new();
    let mut table = Table::new([
        "scheduler",
        "zero-wait(%)",
        "mean wait(s)",
        "p95(s)",
        "p99(s)",
        "busy-CV",
        "pushes/job",
    ]);
    for r in results {
        let cdf = r.cdf();
        table.row([
            r.scheduler.label().to_string(),
            format!("{:.1}", 100.0 * cdf.fraction_zero()),
            format!("{:.1}", r.mean_wait()),
            format!("{:.1}", cdf.quantile(0.95)),
            format!("{:.1}", cdf.quantile(0.99)),
            format!("{:.3}", r.busy_time_cv()),
            format!("{:.2}", r.pushes.mean()),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// `pgrid simulate`
pub fn simulate(args: Args) -> Result<String, String> {
    let scenario = scenario_from(&args)?;
    let schedulers = parse_schedulers(args.get("scheduler").unwrap_or("all"))?;
    let shards = parse_shards(&args)?;
    args.reject_unknown()?;
    let mut out = format!(
        "simulating {} jobs on {} nodes ({}-dim CAN, inter-arrival {}s, ratio {})\n\n",
        scenario.jobs,
        scenario.nodes,
        scenario.dims,
        scenario.job_gen.mean_interarrival,
        scenario.job_gen.constraint_ratio
    );
    let results: Vec<SimResult> = schedulers
        .into_iter()
        .map(|c| run_load_balance_sharded(&scenario, c, shards))
        .collect();
    out.push_str(&render_sim_results(&results));
    Ok(out)
}

/// Parses the shared `--shards` flag (default 1; zero is an error).
fn parse_shards(args: &Args) -> Result<usize, String> {
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(shards)
}

/// `pgrid churn`
pub fn churn(args: Args) -> Result<String, String> {
    let nodes: usize = args.get_or("nodes", 200)?;
    let dims: usize = args.get_or("dims", 11)?;
    let schemes = match args.get("scheme").unwrap_or("all") {
        "vanilla" => vec![HeartbeatScheme::Vanilla],
        "compact" => vec![HeartbeatScheme::Compact],
        "adaptive" => vec![HeartbeatScheme::Adaptive],
        "all" => HeartbeatScheme::ALL.to_vec(),
        other => return Err(format!("unknown scheme '{other}'")),
    };
    let gap: f64 = args.get_or("gap", 10.0)?;
    let duration: f64 = args.get_or("duration", 3600.0)?;
    let loss: f64 = args.get_or("loss", 0.0)?;
    let graceful: f64 = args.get_or("graceful", 0.5)?;
    let seed: u64 = args.get_or("seed", 2011)?;
    args.reject_unknown()?;
    if !(0.0..1.0).contains(&loss) {
        return Err(format!("--loss must be in [0,1), got {loss}"));
    }

    let mut out = format!(
        "churn: {nodes} nodes, {dims}-dim CAN, event gap {gap}s, loss {:.0}%, {duration}s\n\n",
        loss * 100.0
    );
    let mut table = Table::new([
        "scheme",
        "steady broken links",
        "msgs/node/min",
        "KB/node/min",
        "mean degree",
    ]);
    for scheme in schemes {
        let mut cfg = ChurnConfig::new(dims, scheme, nodes);
        cfg.event_gap = gap;
        cfg.stage2_duration = duration;
        cfg.graceful_fraction = graceful;
        cfg.message_loss = loss;
        cfg.seed = seed;
        let r = run_churn(&cfg, uniform_coords(dims));
        table.row([
            scheme.label().to_string(),
            format!("{:.1}", r.steady_broken_links()),
            format!("{:.1}", r.msgs_per_node_min),
            format!("{:.1}", r.kb_per_node_min),
            format!("{:.1}", r.mean_degree),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// `pgrid chaos`
pub fn chaos(args: Args) -> Result<String, String> {
    let schemes = match args.get("scheme").unwrap_or("all") {
        "vanilla" => vec![HeartbeatScheme::Vanilla],
        "compact" => vec![HeartbeatScheme::Compact],
        "adaptive" => vec![HeartbeatScheme::Adaptive],
        "all" => HeartbeatScheme::ALL.to_vec(),
        other => return Err(format!("unknown scheme '{other}'")),
    };
    let scenario = args.get("scenario").unwrap_or("all").to_string();
    let nodes: usize = args.get_or("nodes", 60)?;
    let seed: u64 = args.get_or("seed", 41)?;
    args.reject_unknown()?;

    let mut reports = Vec::new();
    for scheme in schemes {
        let mut configs = pgrid::scenarios::chaos_scenarios(scheme, seed);
        if scenario != "all" {
            configs.retain(|c| c.name == scenario);
            if configs.is_empty() {
                let names: Vec<&str> = pgrid::scenarios::chaos_scenarios(scheme, seed)
                    .iter()
                    .map(|c| c.name)
                    .collect();
                return Err(format!(
                    "unknown scenario '{scenario}' ({} | all)",
                    names.join(" | ")
                ));
            }
        }
        for mut cfg in configs {
            cfg.initial_nodes = nodes;
            reports.push(run_chaos(&cfg));
        }
    }

    let mut out = format!("chaos: {nodes} nodes, seed {seed}\n\n");
    let mut table = Table::new([
        "scenario",
        "scheme",
        "broken peak",
        "broken after",
        "gaps after",
        "recovery(s)",
        "dropped",
        "verdict",
    ]);
    let mut violations = Vec::new();
    for r in &reports {
        table.row([
            r.name.to_string(),
            r.scheme.label().to_string(),
            r.broken_peak.to_string(),
            r.broken_after.to_string(),
            r.gaps_after.to_string(),
            r.recovery_time
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "-".into()),
            r.dropped_messages.to_string(),
            if r.violations.is_empty() {
                "ok".to_string()
            } else {
                format!("{} VIOLATIONS", r.violations.len())
            },
        ]);
        for v in &r.violations {
            violations.push(format!("{}/{}: {v}", r.name, r.scheme.label()));
        }
    }
    out.push_str(&table.render());
    if !violations.is_empty() {
        return Err(format!(
            "invariant violations:\n  {}",
            violations.join("\n  ")
        ));
    }
    Ok(out)
}

/// `pgrid scenarios`
pub fn scenarios(args: Args) -> Result<String, String> {
    if args.switch("list") {
        args.reject_unknown()?;
        let mut out = String::from("registered scenarios:\n");
        for spec in pgrid::scenarios::REGISTRY {
            let _ = writeln!(
                out,
                "  {:<18} {}{}",
                spec.name,
                spec.summary,
                if spec.has_chaos() { "  [chaos]" } else { "" }
            );
        }
        return Ok(out);
    }
    let filter = args.get("scenario").unwrap_or("").to_string();
    let seed: u64 = args.get_or("seed", pgrid::experiments::SCENARIO_SEED)?;
    let scale = if args.switch("quick") {
        Scale::Quick
    } else {
        Scale::Paper
    };
    let shards = parse_shards(&args)?;
    args.reject_unknown()?;
    let specs = pgrid::scenarios::matching(&filter);
    if specs.is_empty() {
        let names: Vec<&str> = pgrid::scenarios::REGISTRY.iter().map(|s| s.name).collect();
        return Err(format!(
            "no scenario matches '{filter}' (known: {})",
            names.join(" | ")
        ));
    }

    let cells = pgrid::experiments::scenario_suite_over_sharded(scale, seed, &specs, shards);
    let mut out = format!(
        "scenario library: {} scenario(s), seed {seed} ({scale:?})\n\n",
        specs.len()
    );
    let mut table = Table::new([
        "scenario",
        "scheme",
        "broken peak",
        "false exp",
        "takeovers",
        "promoted",
        "fenced",
        "relearn(hb)",
        "misdirect",
        "verdict",
    ]);
    let mut violations = Vec::new();
    for c in &cells {
        for arm in &c.arms {
            table.row([
                c.scenario.to_string(),
                arm.scheme.label().to_string(),
                arm.broken_peak.to_string(),
                arm.live_expulsions.to_string(),
                arm.takeovers.to_string(),
                arm.replica_promotions.to_string(),
                arm.stale_replica_rejects.to_string(),
                arm.relearn_mean_heartbeats
                    .map(|m| format!("{m:.2}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}%", 100.0 * arm.misdirect_rate),
                if arm.violations.is_empty() {
                    "ok".to_string()
                } else {
                    format!("{} VIOLATIONS", arm.violations.len())
                },
            ]);
            for v in &arm.violations {
                violations.push(format!("{}/{}: {v}", c.scenario, arm.scheme.label()));
            }
        }
    }
    out.push_str(&table.render());
    for c in &cells {
        if let Some(d) = &c.wait_delta {
            let _ = writeln!(
                out,
                "{}: shaped arrivals mean wait {:.1}s vs {:.1}s baseline (p99 {:.1}s vs {:.1}s)",
                c.scenario, d.shaped_mean, d.baseline_mean, d.shaped_p99, d.baseline_p99,
            );
        }
        if let Some(o) = &c.overload {
            let _ = writeln!(
                out,
                "{}: goodput {:.1} vs {:.1} jobs/1000s vanilla, shed {:.1}%, \
                 retry amp {:.2}x, p99 {:.0}s vs {:.0}s",
                c.scenario,
                o.controlled_goodput,
                o.vanilla_goodput,
                100.0 * o.shed_rate,
                o.retry_amplification,
                o.controlled_p99,
                o.vanilla_p99,
            );
            if o.controlled_goodput <= o.vanilla_goodput {
                violations.push(format!(
                    "{}: overload control did not improve goodput ({:.2} <= {:.2})",
                    c.scenario, o.controlled_goodput, o.vanilla_goodput
                ));
            }
        }
    }
    if !violations.is_empty() {
        return Err(format!(
            "invariant violations:\n  {}",
            violations.join("\n  ")
        ));
    }
    Ok(out)
}

/// `pgrid detector`
pub fn detector(args: Args) -> Result<String, String> {
    let seed: u64 = args.get_or("seed", pgrid::experiments::DETECTOR_SEED)?;
    let scale = if args.switch("quick") {
        Scale::Quick
    } else {
        Scale::Paper
    };
    args.reject_unknown()?;

    let cells = pgrid::experiments::detector_suite_seeded(scale, seed);
    let mut out = format!("detector sweep: seed {seed} ({scale:?})\n\n");
    let mut table = Table::new([
        "stress",
        "freeze(s)",
        "rule",
        "suspicions",
        "probes",
        "expelled",
        "false pos",
        "revived",
        "lag(s)",
    ]);
    let mut regressions = Vec::new();
    for c in &cells {
        for arm in [&c.fixed, &c.adaptive] {
            table.row([
                format!("{:.1}", c.link_stress),
                format!("{:.0}", c.freeze_secs),
                arm.mode.label().to_string(),
                arm.suspicions.to_string(),
                arm.probe_requests.to_string(),
                arm.live_expulsions.to_string(),
                arm.false_expulsions.to_string(),
                arm.revivals.to_string(),
                arm.detection_lag
                    .map(|l| format!("{l:.1}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        if c.adaptive.false_expulsions > c.fixed.false_expulsions {
            regressions.push(format!(
                "stress {:.1} freeze {:.0}: adaptive false positives {} exceed fixed {}",
                c.link_stress, c.freeze_secs, c.adaptive.false_expulsions, c.fixed.false_expulsions
            ));
        }
    }
    out.push_str(&table.render());
    let fixed_fp: u64 = cells.iter().map(|c| c.fixed.false_expulsions).sum();
    let adaptive_fp: u64 = cells.iter().map(|c| c.adaptive.false_expulsions).sum();
    out.push_str(&format!(
        "false-positive expulsions: fixed {fixed_fp}, adaptive {adaptive_fp}\n"
    ));
    if regressions.is_empty() {
        Ok(out)
    } else {
        Err(format!(
            "detector regressions:\n  {}",
            regressions.join("\n  ")
        ))
    }
}

/// `pgrid fuzz`
pub fn fuzz(args: Args) -> Result<String, String> {
    if let Some(path) = args.get("replay").map(str::to_string) {
        args.reject_unknown()?;
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let (schedule, report) = replay_trace(&text)?;
        let mut out = format!(
            "replayed {path}: seed {}, scheme {}, {} nodes, {} fault events\n  \
             digest 0x{:016x}  broken peak {}\n",
            schedule.seed,
            schedule.scheme,
            schedule.nodes,
            schedule.events.len(),
            report.digest,
            report.broken_peak,
        );
        if let Some(expect) = schedule.expect_digest {
            if expect != report.digest {
                return Err(format!(
                    "digest mismatch: trace expects 0x{expect:016x}, replay produced 0x{:016x}",
                    report.digest
                ));
            }
            out.push_str("  digest matches the trace's recorded value\n");
        }
        if !report.violations.is_empty() {
            return Err(format!(
                "replay violations:\n  {}",
                report.violations.join("\n  ")
            ));
        }
        out.push_str("invariants: ok\n");
        return Ok(out);
    }

    let start: u64 = args.get_or("seed", 1)?;
    let seeds: usize = args.get_or("seeds", 16)?;
    let budget: f64 = args.get_or("budget", 60.0)?;
    let out_dir = args.get("out").unwrap_or("results").to_string();
    let shards = parse_shards(&args)?;
    args.reject_unknown()?;
    if seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    if !(budget.is_finite() && budget > 0.0) {
        return Err(format!(
            "--budget must be positive and finite, got {budget}"
        ));
    }

    let mut cfg = FuzzConfig::new(start, seeds);
    cfg.wall_budget = budget;
    cfg.shards = shards;
    let summary = fuzz_search(&cfg);

    let mut out = format!(
        "fuzz: seeds {start}..{}, wall budget {budget}s\n\n",
        start + seeds as u64
    );
    let mut table = Table::new(["seed", "scheme", "nodes", "events", "broken peak", "digest"]);
    for r in &summary.runs {
        table.row([
            r.seed.to_string(),
            r.scheme.clone(),
            r.nodes.to_string(),
            r.events.to_string(),
            r.broken_peak.to_string(),
            format!("{:016x}", r.digest),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "clean seeds: {}/{} requested{}\n",
        summary.runs.len(),
        summary.seeds_requested,
        if summary.hit_wall_budget {
            " (wall budget hit)"
        } else {
            ""
        }
    ));
    match summary.failure {
        None => {
            out.push_str("invariants: ok (zero violations)\n");
            Ok(out)
        }
        Some(f) => {
            std::fs::create_dir_all(&out_dir)
                .map_err(|e| format!("cannot create {out_dir}: {e}"))?;
            let path = std::path::Path::new(&out_dir).join(format!("fuzz_seed{}.trace", f.seed));
            std::fs::write(&path, f.shrunk.to_text())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            Err(format!(
                "seed {} violated {} invariant(s); shrunk {} -> {} fault events, \
                 repro trace written to {}\n  {}",
                f.seed,
                f.violations.len(),
                f.original_events,
                f.shrunk.events.len(),
                path.display(),
                f.violations.join("\n  ")
            ))
        }
    }
}

/// `pgrid trace ...`
pub fn trace(rest: &[String]) -> Result<String, String> {
    let Some(sub) = rest.first() else {
        return Err("trace needs a subcommand: gen-nodes | gen-jobs | replay".into());
    };
    let args = Args::parse(&rest[1..])?;
    match sub.as_str() {
        "gen-nodes" => {
            let count: usize = args.get_or("count", 100)?;
            let dims: usize = args.get_or("dims", 11)?;
            let seed: u64 = args.get_or("seed", 2011)?;
            let out_path = args.get("out").map(str::to_string);
            args.reject_unknown()?;
            let slots = ((dims.saturating_sub(5)) / 3) as u8;
            let nodes = generate_nodes(&NodeGenConfig::paper_defaults(slots), count, seed);
            let text = trace::write_nodes(&nodes);
            emit(text, out_path)
        }
        "gen-jobs" => {
            let count: usize = args.get_or("count", 1000)?;
            let dims: usize = args.get_or("dims", 11)?;
            let ratio: f64 = args.get_or("ratio", 0.6)?;
            let ia: f64 = args.get_or("interarrival", 3.0)?;
            let seed: u64 = args.get_or("seed", 2011)?;
            let out_path = args.get("out").map(str::to_string);
            args.reject_unknown()?;
            let slots = ((dims.saturating_sub(5)) / 3) as u8;
            let mut stream = JobStream::new(JobGenConfig::paper_defaults(slots, ratio, ia), seed);
            let jobs = stream.take_jobs(count);
            let text = trace::write_jobs(&jobs);
            emit(text, out_path)
        }
        "replay" => {
            let nodes_path = args
                .get("nodes")
                .ok_or("replay needs --nodes FILE")?
                .to_string();
            let jobs_path = args
                .get("jobs")
                .ok_or("replay needs --jobs FILE")?
                .to_string();
            let schedulers = parse_schedulers(args.get("scheduler").unwrap_or("all"))?;
            let seed: u64 = args.get_or("seed", 2011)?;
            args.reject_unknown()?;
            let node_text = std::fs::read_to_string(&nodes_path)
                .map_err(|e| format!("cannot read {nodes_path}: {e}"))?;
            let job_text = std::fs::read_to_string(&jobs_path)
                .map_err(|e| format!("cannot read {jobs_path}: {e}"))?;
            let population = trace::read_nodes(&node_text).map_err(|e| e.to_string())?;
            let jobs = trace::read_jobs(&job_text).map_err(|e| e.to_string())?;
            let results = replay(&population, &jobs, &schedulers, seed)?;
            Ok(format!(
                "replayed {} jobs on {} nodes\n\n{}",
                jobs.len(),
                population.len(),
                render_sim_results(&results)
            ))
        }
        other => Err(format!("unknown trace subcommand '{other}'")),
    }
}

fn emit(text: String, out_path: Option<String>) -> Result<String, String> {
    match out_path {
        Some(p) => {
            std::fs::write(&p, &text).map_err(|e| format!("cannot write {p}: {e}"))?;
            Ok(format!("wrote {} bytes to {p}\n", text.len()))
        }
        None => Ok(text),
    }
}

/// Replays an explicit (population, jobs) pair through schedulers.
/// Infers the CAN dimensionality from the largest GPU family present.
pub fn replay(
    population: &[NodeSpec],
    jobs: &[(f64, JobSpec)],
    schedulers: &[SchedulerChoice],
    seed: u64,
) -> Result<Vec<SimResult>, String> {
    if population.is_empty() {
        return Err("empty node population".into());
    }
    let max_slot = population
        .iter()
        .flat_map(|n| n.ces().iter())
        .filter_map(|c| c.ce_type.gpu_slot())
        .max()
        .map_or(0, |s| s + 1);
    let dims = 5 + 3 * max_slot as usize;
    let layout = DimensionLayout::with_dims(dims);
    // Reject jobs the population can never satisfy up front (clear
    // error instead of a simulation panic).
    for (_, j) in jobs {
        if !population.iter().any(|n| j.satisfied_by(n)) {
            return Err(format!("job {} is unsatisfiable by the population", j.id));
        }
    }
    let mut results = Vec::new();
    for &choice in schedulers {
        let mut grid = pgrid::sched::StaticGrid::build(layout.clone(), population.to_vec(), seed);
        let params = PushParams::default();
        let mut matchmaker: Box<dyn Matchmaker> = match choice {
            SchedulerChoice::CanHet => Box::new(PushingMatchmaker::heterogeneous(&grid, params)),
            SchedulerChoice::CanHom => Box::new(PushingMatchmaker::homogeneous(&grid, params)),
            SchedulerChoice::Central => Box::new(CentralMatchmaker),
        };
        results.push(pgrid::sched::grid_sim::run_trace(
            &mut grid,
            matchmaker.as_mut(),
            jobs,
            60.0,
            seed,
            choice,
        ));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(raw: &[&str]) -> Args {
        Args::parse(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn info_mentions_paper_defaults() {
        let s = info();
        assert!(s.contains("1000"));
        assert!(s.contains("20000") || s.contains("20_000") || s.contains("20 000"));
    }

    #[test]
    fn simulate_runs_small() {
        let out = simulate(a(&[
            "--nodes",
            "40",
            "--jobs",
            "150",
            "--interarrival",
            "60",
            "--scheduler",
            "central",
        ]))
        .unwrap();
        assert!(out.contains("central"));
        assert!(out.contains("zero-wait"));
    }

    #[test]
    fn simulate_sharded_output_matches_sequential() {
        let base = [
            "--nodes",
            "40",
            "--jobs",
            "120",
            "--interarrival",
            "60",
            "--scheduler",
            "het",
        ];
        let seq = simulate(a(&base)).unwrap();
        let mut sharded_args: Vec<&str> = base.to_vec();
        sharded_args.extend(["--shards", "4"]);
        let sharded = simulate(a(&sharded_args)).unwrap();
        assert_eq!(seq, sharded, "sharded engine must be bit-identical");
        assert!(simulate(a(&["--shards", "0"])).is_err());
    }

    #[test]
    fn simulate_rejects_bad_dims() {
        let err = simulate(a(&["--dims", "7"])).unwrap_err();
        assert!(err.contains("--dims"));
    }

    #[test]
    fn simulate_rejects_unknown_flag() {
        let err = simulate(a(&["--bogus", "1"])).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn churn_rejects_bad_loss_and_scheme() {
        let err = churn(a(&["--loss", "1.5"])).unwrap_err();
        assert!(err.contains("--loss"));
        let err = churn(a(&["--scheme", "telepathy"])).unwrap_err();
        assert!(err.contains("telepathy"));
    }

    #[test]
    fn chaos_runs_small_and_rejects_bad_args() {
        let out = chaos(a(&[
            "--scheme",
            "adaptive",
            "--scenario",
            "flash-crowd",
            "--nodes",
            "36",
        ]))
        .unwrap();
        assert!(out.contains("flash-crowd"));
        assert!(out.contains("Adaptive"));
        assert!(out.contains("ok"));
        assert!(chaos(a(&["--scheme", "bogus"])).is_err());
        assert!(chaos(a(&["--scenario", "bogus"])).is_err());
        assert!(chaos(a(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn scenarios_lists_filters_and_rejects_zero_matches() {
        let listing = scenarios(a(&["--list"])).unwrap();
        for spec in pgrid::scenarios::REGISTRY {
            assert!(listing.contains(spec.name), "listing misses {}", spec.name);
        }
        let out = scenarios(a(&["--quick", "--scenario", "gray-failure"])).unwrap();
        assert!(out.contains("gray-failure"));
        assert!(out.contains("ok"));
        let err = scenarios(a(&["--scenario", "no-such-thing"])).unwrap_err();
        assert!(err.contains("no scenario matches"), "{err}");
        assert!(err.contains("diurnal-wave"), "{err}");
        assert!(scenarios(a(&["--bogus", "1"])).is_err());
        assert!(scenarios(a(&["--seed", "nope"])).is_err());
    }

    #[test]
    fn detector_runs_quick_and_rejects_bad_args() {
        let out = detector(a(&["--quick"])).unwrap();
        assert!(out.contains("false-positive expulsions"), "{out}");
        assert!(out.contains("fixed"));
        assert!(out.contains("adaptive"));
        assert!(detector(a(&["--bogus", "1"])).is_err());
        assert!(detector(a(&["--seed", "nope"])).is_err());
    }

    #[test]
    fn fuzz_runs_a_tiny_clean_sweep() {
        // Seeds 100.. are exercised as clean in the core fuzz tests.
        let out = fuzz(a(&["--seed", "100", "--seeds", "2", "--budget", "300"])).unwrap();
        assert!(out.contains("clean seeds: 2/2 requested"), "{out}");
        assert!(out.contains("invariants: ok"));
    }

    #[test]
    fn fuzz_rejects_bad_args() {
        assert!(fuzz(a(&["--seeds", "0"])).is_err());
        assert!(fuzz(a(&["--budget", "-3"])).is_err());
        assert!(fuzz(a(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn fuzz_replays_a_saved_trace_and_checks_its_digest() {
        let dir = std::env::temp_dir().join("pgrid_cli_fuzz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.trace");
        let mut schedule =
            pgrid::simcore::dst::generate(100, &pgrid::simcore::ScheduleBudget::smoke());
        schedule.expect_digest = Some(pgrid::fuzz::run_case(&schedule).digest);
        std::fs::write(&path, schedule.to_text()).unwrap();

        let out = fuzz(a(&["--replay", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("digest matches"), "{out}");
        assert!(out.contains("invariants: ok"));

        // A corrupted recorded digest must fail the replay.
        schedule.expect_digest = Some(0xdead_beef);
        std::fs::write(&path, schedule.to_text()).unwrap();
        let err = fuzz(a(&["--replay", path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn trace_replay_requires_files() {
        let raw = |v: Vec<&str>| v.into_iter().map(String::from).collect::<Vec<_>>();
        let err = trace(&raw(vec!["replay"])).unwrap_err();
        assert!(err.contains("--nodes"));
        let err = trace(&raw(vec![
            "replay",
            "--nodes",
            "/nonexistent",
            "--jobs",
            "/nonexistent",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot read") || err.contains("nonexistent"));
    }

    #[test]
    fn churn_runs_small() {
        let out = churn(a(&[
            "--nodes",
            "40",
            "--dims",
            "5",
            "--duration",
            "600",
            "--scheme",
            "compact",
        ]))
        .unwrap();
        assert!(out.contains("Compact"));
        assert!(out.contains("KB/node/min"));
    }

    #[test]
    fn trace_gen_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("pgrid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let nodes_p = dir.join("nodes.trace");
        let jobs_p = dir.join("jobs.trace");
        let raw = |v: Vec<&str>| v.into_iter().map(String::from).collect::<Vec<_>>();
        trace(&raw(vec![
            "gen-nodes",
            "--count",
            "40",
            "--out",
            nodes_p.to_str().unwrap(),
        ]))
        .unwrap();
        trace(&raw(vec![
            "gen-jobs",
            "--count",
            "100",
            "--interarrival",
            "45",
            "--ratio",
            "0.0", // unconstrained: satisfiable by any population
            "--out",
            jobs_p.to_str().unwrap(),
        ]))
        .unwrap();
        let out = trace(&raw(vec![
            "replay",
            "--nodes",
            nodes_p.to_str().unwrap(),
            "--jobs",
            jobs_p.to_str().unwrap(),
            "--scheduler",
            "central",
        ]))
        .unwrap();
        assert!(out.contains("replayed 100 jobs on 40 nodes"), "{out}");
        assert!(out.contains("central"));
    }

    #[test]
    fn dispatch_help_and_unknown() {
        let out = crate::dispatch(vec!["pgrid".into(), "help".into()]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(crate::dispatch(vec!["pgrid".into(), "frobnicate".into()]).is_err());
        let bare = crate::dispatch(vec!["pgrid".into()]).unwrap();
        assert!(bare.contains("USAGE"));
    }
}
