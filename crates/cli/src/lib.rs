//! Implementation of the `pgrid` command-line tool.
//!
//! Subcommands:
//!
//! * `pgrid simulate` — one load-balancing simulation (Figure 5/6
//!   style) with configurable population, workload and scheduler;
//! * `pgrid churn` — one CAN churn simulation (Figure 7/8 style) with
//!   configurable scheme, churn rate and message loss;
//! * `pgrid chaos` — scripted fault scenarios through the chaos
//!   harness, failing on any invariant violation;
//! * `pgrid scenarios` — the named adversarial scenario library
//!   (diurnal waves, flash crowds, rack storms, stragglers, gray
//!   failures) through the DST oracle harness, scheme vs scheme;
//! * `pgrid detector` — fixed-timeout vs adaptive-suspicion failure
//!   detection under asymmetric link stress and process freezes;
//! * `pgrid fuzz` — seeded fault-schedule fuzzing with delta-debugged
//!   repros, plus bit-exact replay of saved traces;
//! * `pgrid trace` — generate node/job traces, or replay previously
//!   saved traces through a scheduler;
//! * `pgrid info` — the built-in scenario defaults and experiment
//!   inventory.
//!
//! Argument parsing is hand-rolled (`--flag value` pairs plus boolean
//! switches) to stay inside the approved dependency set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::process::ExitCode;

/// Entry point used by the `pgrid` binary.
pub fn run(argv: Vec<String>) -> ExitCode {
    match dispatch(argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `pgrid help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Parses and executes; returns the full textual output (testable).
pub fn dispatch(argv: Vec<String>) -> Result<String, String> {
    let mut it = argv.into_iter();
    let _program = it.next();
    let Some(cmd) = it.next() else {
        return Ok(commands::help());
    };
    let rest: Vec<String> = it.collect();
    match cmd.as_str() {
        "simulate" => commands::simulate(args::Args::parse(&rest)?),
        "churn" => commands::churn(args::Args::parse(&rest)?),
        "chaos" => commands::chaos(args::Args::parse(&rest)?),
        "scenarios" => commands::scenarios(args::Args::parse(&rest)?),
        "detector" => commands::detector(args::Args::parse(&rest)?),
        "fuzz" => commands::fuzz(args::Args::parse(&rest)?),
        "trace" => commands::trace(&rest),
        "info" => Ok(commands::info()),
        "help" | "--help" | "-h" => Ok(commands::help()),
        other => Err(format!("unknown command '{other}'")),
    }
}
