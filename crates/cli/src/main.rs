//! The `pgrid` command-line tool (see `pgrid help`).

use std::process::ExitCode;

fn main() -> ExitCode {
    pgrid_cli::run(std::env::args().collect())
}
