//! Minimal `--flag value` argument parsing.

use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` pairs and bare
/// `--switch` booleans.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Boolean switches recognized without a value.
const SWITCHES: &[&str] = &["shared-gpus", "quiet", "csv", "quick", "list"];

impl Args {
    /// Parses a raw argument list.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if SWITCHES.contains(&key) && raw.get(i + 1).is_none_or(|next| next.starts_with("--")) {
                switches.push(key.to_string());
                i += 1;
                continue;
            }
            let Some(v) = raw.get(i + 1) else {
                return Err(format!("flag '--{key}' needs a value"));
            };
            values.insert(key.to_string(), v.clone());
            i += 2;
        }
        Ok(Args {
            values,
            switches,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn note(&self, key: &str) {
        self.consumed.borrow_mut().push(key.to_string());
    }

    /// String value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.note(key);
        self.values.get(key).map(String::as_str)
    }

    /// Typed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        self.note(key);
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value '{v}' for --{key}")),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.note(key);
        self.switches.iter().any(|s| s == key)
    }

    /// Errors on any flag the command did not consume (catches typos).
    pub fn reject_unknown(&self) -> Result<(), String> {
        let seen = self.consumed.borrow();
        for k in self.values.keys().chain(self.switches.iter()) {
            if !seen.iter().any(|s| s == k) {
                return Err(format!("unknown flag '--{k}'"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = Args::parse(&raw(&["--nodes", "100", "--shared-gpus", "--seed", "7"])).unwrap();
        assert_eq!(a.get_or("nodes", 0usize).unwrap(), 100);
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert!(a.switch("shared-gpus"));
        assert!(!a.switch("quiet"));
        a.reject_unknown().unwrap();
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(&raw(&[])).unwrap();
        assert_eq!(a.get_or("nodes", 42usize).unwrap(), 42);
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&raw(&["oops"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Args::parse(&raw(&["--nodes"])).is_err());
    }

    #[test]
    fn rejects_bad_type() {
        let a = Args::parse(&raw(&["--nodes", "many"])).unwrap();
        assert!(a.get_or("nodes", 0usize).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let a = Args::parse(&raw(&["--bogus", "1"])).unwrap();
        let _ = a.get_or("nodes", 0usize);
        assert!(a.reject_unknown().is_err());
    }

    #[test]
    fn switch_followed_by_flag_parses() {
        let a = Args::parse(&raw(&["--csv", "--nodes", "5"])).unwrap();
        assert!(a.switch("csv"));
        assert_eq!(a.get_or("nodes", 0usize).unwrap(), 5);
    }
}
