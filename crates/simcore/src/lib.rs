//! Deterministic discrete-event simulation core used by every
//! experiment in this reproduction.
//!
//! The paper evaluates its algorithms with "an event driven simulator
//! that simulates the CAN construction, as well as matchmaking
//! algorithms" (§V-A). This crate provides that substrate:
//!
//! * [`EventQueue`] — a time-ordered event queue with stable FIFO
//!   tie-breaking, so simulations are reproducible bit-for-bit;
//! * [`rng`] — seedable random-number utilities and the hand-rolled
//!   distributions the workload model needs (exponential inter-arrival
//!   times, uniform runtimes, weighted discrete choices, and the skewed
//!   "most nodes are weak" capability distribution);
//! * [`fault`] — deterministic fault injection: a seeded
//!   [`fault::NetworkModel`] (per-class loss, duplication, latency
//!   jitter, scheduled partitions) and scripted node-level
//!   [`fault::FaultPlan`]s (crash, rejoin, freeze), all replayable;
//! * [`dst`] — deterministic-simulation-testing primitives: seeded
//!   random fault schedules under a [`dst::ScheduleBudget`], a
//!   replayable text trace format, and a delta-debugging shrinker;
//! * [`shard`] — zone-region sharding for deterministic-parallel
//!   execution: a hyper-rectangular [`shard::RegionPartition`] of the
//!   unit torus, a lane-partitioned [`shard::ShardedQueue`] whose
//!   shared sequence counter makes the K-way merge bit-identical to a
//!   single queue, and a conservative time-window engine whose
//!   barriers apply cross-shard messages in canonical
//!   `(time, shard, sequence)` order.
//!
//! Simulations in this workspace are deterministic by construction:
//! single-threaded runs and sharded runs replay the same trajectory
//! bit-for-bit, which the cross-shard equivalence suite pins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dst;
pub mod event;
pub mod fault;
pub mod rng;
pub mod shard;

pub use dst::{
    DegradeWindow, FaultSchedule, Fnv, OverloadRecord, PartitionWindow, ScheduleBudget,
    ScheduleMacro, ShrinkOutcome, TraceParseError,
};
pub use event::{EventQueue, SimTime};
pub use fault::{
    ClassFaults, FaultPlan, LinkDegrade, MsgClass, NetworkModel, NodeFault, Partition,
};
pub use rng::SimRng;
pub use shard::{RegionPartition, ShardAssignment, ShardedQueue};
