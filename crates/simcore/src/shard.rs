//! Zone-region sharding for deterministic-parallel simulation.
//!
//! The CAN overlay tiles the unit torus `[0,1)^d` with hyper-rectangular
//! zones, which makes the coordinate space a natural partition key: a
//! [`RegionPartition`] splits the torus into `S` hyper-rectangular shard
//! regions by recursive longest-dimension bisection, and every point —
//! hence every zone centroid, hence every node — lands in exactly one
//! shard by construction (the lookup walks the split tree, so even
//! degenerate cuts cannot orphan or double-assign a point).
//!
//! On top of the partition sit the two execution primitives the sharded
//! engine uses:
//!
//! * [`ShardedQueue`] — one event lane per shard plus a coordinator
//!   lane, merged by a strict `(time, seq)` K-way merge with a *shared*
//!   sequence counter. Because the counter is shared, the merged order
//!   is identical to a single [`crate::EventQueue`] no matter how many
//!   lanes exist: shard-count 1 and shard-count N replay the same
//!   trajectory bit-for-bit when scheduling happens on one thread.
//! * [`run_windows`] — a conservative time-window engine: each lane
//!   drains its own queue up to the next window edge (optionally on its
//!   own thread), cross-lane messages are buffered in per-lane outboxes
//!   and exchanged only at window barriers, where they are applied in
//!   the canonical `(time, source lane, source sequence)` order. The
//!   canonical apply makes results independent of thread scheduling and
//!   of the order outboxes happen to be collected in.
//!
//! The conservative-synchronization contract: a cross-lane message
//! emitted inside a window must fire no earlier than the window edge
//! (the window width is a lookahead bound). [`Emitter::send`] enforces
//! this with an assertion, because a violation would silently reorder
//! the simulation.

use crate::event::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// ---------------------------------------------------------------------------
// Region partition
// ---------------------------------------------------------------------------

/// A half-open hyper-rectangle `[lo, hi)` in the unit torus.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Inclusive lower corner, one coordinate per dimension.
    pub lo: Vec<f64>,
    /// Exclusive upper corner, one coordinate per dimension.
    pub hi: Vec<f64>,
}

impl Region {
    /// Whether `point` lies inside the half-open box.
    pub fn contains(&self, point: &[f64]) -> bool {
        point
            .iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .all(|(p, (l, h))| *l <= *p && *p < *h)
    }

    /// Product of the side lengths.
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }
}

/// Internal node of the bisection tree.
#[derive(Debug, Clone)]
enum SplitNode {
    /// Terminal region owned by one shard.
    Leaf(usize),
    /// Binary split of `dim` at `cut`: points with `p[dim] < cut` go
    /// left, everything else right.
    Split {
        dim: usize,
        cut: f64,
        left: usize,
        right: usize,
    },
}

/// Hyper-rectangular tiling of `[0,1)^d` into `S` shard regions.
///
/// Built by recursive bisection: at every step the region splits along
/// its longest side (lowest dimension index on ties) at the fraction
/// that balances the leaf counts, so shard volumes differ by at most the
/// ratio of a floor/ceil split. Lookup walks the split tree, so every
/// point maps to exactly one shard — an exact cover by construction.
///
/// ```
/// use pgrid_simcore::shard::RegionPartition;
/// let part = RegionPartition::new(2, 4);
/// assert_eq!(part.shards(), 4);
/// let owner = part.shard_of(&[0.1, 0.9]);
/// assert!(owner < 4);
/// assert!(part.regions()[owner].contains(&[0.1, 0.9]));
/// ```
#[derive(Debug, Clone)]
pub struct RegionPartition {
    dims: usize,
    nodes: Vec<SplitNode>,
    root: usize,
    regions: Vec<Region>,
}

impl RegionPartition {
    /// Partitions the `dims`-dimensional unit torus into `shards`
    /// regions.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `shards == 0`.
    pub fn new(dims: usize, shards: usize) -> Self {
        assert!(dims > 0, "partition needs at least one dimension");
        assert!(shards > 0, "partition needs at least one shard");
        let mut part = RegionPartition {
            dims,
            nodes: Vec::new(),
            root: 0,
            regions: vec![
                Region {
                    lo: vec![0.0; dims],
                    hi: vec![0.0; dims],
                };
                shards
            ],
        };
        let mut next_shard = 0usize;
        let lo = vec![0.0; dims];
        let hi = vec![1.0; dims];
        part.root = part.build(lo, hi, shards, &mut next_shard);
        debug_assert_eq!(next_shard, shards);
        part
    }

    fn build(&mut self, lo: Vec<f64>, hi: Vec<f64>, count: usize, next_shard: &mut usize) -> usize {
        if count == 1 {
            let shard = *next_shard;
            *next_shard += 1;
            self.regions[shard] = Region { lo, hi };
            self.nodes.push(SplitNode::Leaf(shard));
            return self.nodes.len() - 1;
        }
        // Longest side, lowest dimension index on ties.
        let mut dim = 0usize;
        let mut best = f64::NEG_INFINITY;
        for d in 0..self.dims {
            let extent = hi[d] - lo[d];
            if extent > best {
                best = extent;
                dim = d;
            }
        }
        let left_count = count / 2;
        let right_count = count - left_count;
        let mut cut = lo[dim] + (hi[dim] - lo[dim]) * (left_count as f64 / count as f64);
        // Guard against a degenerate cut from rounding: the tree lookup
        // stays exact either way, but keeping the cut interior keeps
        // both child regions non-empty.
        if cut <= lo[dim] {
            cut = lo[dim] + (hi[dim] - lo[dim]) * 0.5;
        }
        let mut left_hi = hi.clone();
        left_hi[dim] = cut;
        let mut right_lo = lo.clone();
        right_lo[dim] = cut;
        let left = self.build(lo, left_hi, left_count, next_shard);
        let right = self.build(right_lo, hi, right_count, next_shard);
        self.nodes.push(SplitNode::Split {
            dim,
            cut,
            left,
            right,
        });
        self.nodes.len() - 1
    }

    /// Number of shard regions.
    #[inline]
    pub fn shards(&self) -> usize {
        self.regions.len()
    }

    /// Dimensionality of the partitioned space.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The shard regions, indexed by shard id.
    #[inline]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The shard owning `point`.
    ///
    /// Coordinates are folded into `[0,1)` first (the space is a
    /// torus), then the split tree is walked: `p[dim] < cut` goes left,
    /// everything else right, so exactly one leaf is reached for any
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if `point.len()` differs from [`Self::dims`].
    pub fn shard_of(&self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                SplitNode::Leaf(shard) => return *shard,
                SplitNode::Split {
                    dim,
                    cut,
                    left,
                    right,
                    ..
                } => {
                    let p = wrap_unit(point[*dim]);
                    idx = if p < *cut { *left } else { *right };
                }
            }
        }
    }
}

/// Folds a coordinate into `[0,1)` (torus wrap).
fn wrap_unit(x: f64) -> f64 {
    let f = x - x.floor();
    if f >= 1.0 {
        0.0
    } else {
        f
    }
}

// ---------------------------------------------------------------------------
// Shard assignment
// ---------------------------------------------------------------------------

/// A concrete node→shard mapping derived from a [`RegionPartition`].
#[derive(Debug, Clone)]
pub struct ShardAssignment {
    /// `lane_of[node]` is the owning shard of each node.
    pub lane_of: Vec<usize>,
    /// `members[shard]` lists the member nodes of each shard in
    /// ascending node order.
    pub members: Vec<Vec<usize>>,
}

impl ShardAssignment {
    /// Builds an assignment for `n` nodes where node `i` belongs to
    /// shard `owner(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` returns a shard index `>= shards`.
    pub fn from_fn(shards: usize, n: usize, mut owner: impl FnMut(usize) -> usize) -> Self {
        let mut lane_of = Vec::with_capacity(n);
        let mut members = vec![Vec::new(); shards];
        for i in 0..n {
            let s = owner(i);
            assert!(
                s < shards,
                "owner({i}) = {s} out of range for {shards} shards"
            );
            lane_of.push(s);
            members[s].push(i);
        }
        ShardAssignment { lane_of, members }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.members.len()
    }
}

// ---------------------------------------------------------------------------
// Sharded event queue (shared sequence counter)
// ---------------------------------------------------------------------------

struct LaneEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for LaneEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for LaneEntry<E> {}
impl<E> PartialOrd for LaneEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for LaneEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted: earliest time first, FIFO on ties.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue partitioned into lanes with one shared
/// sequence counter.
///
/// Popping performs a strict K-way merge on `(time, seq)`. Because the
/// sequence counter is shared across lanes, the merged pop order is
/// *identical* to a single [`crate::EventQueue`] fed the same schedule
/// calls — the lane structure changes where events are stored, never
/// when they fire. That is the property the shard-count-1 golden-digest
/// pins rely on.
///
/// ```
/// use pgrid_simcore::shard::ShardedQueue;
/// let mut q = ShardedQueue::new(3);
/// q.schedule(1, 5.0, "b");
/// q.schedule(2, 5.0, "c");
/// q.schedule(0, 1.0, "a");
/// assert_eq!(q.pop(), Some((1.0, 0, "a")));
/// assert_eq!(q.pop(), Some((5.0, 1, "b")));
/// assert_eq!(q.pop(), Some((5.0, 2, "c")));
/// ```
pub struct ShardedQueue<E> {
    lanes: Vec<BinaryHeap<LaneEntry<E>>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    popped_per_lane: Vec<u64>,
}

impl<E> ShardedQueue<E> {
    /// An empty queue with `lanes` lanes, at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "queue needs at least one lane");
        ShardedQueue {
            lanes: (0..lanes).map(|_| BinaryHeap::new()).collect(),
            next_seq: 0,
            now: 0.0,
            popped: 0,
            popped_per_lane: vec![0; lanes],
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far across all lanes.
    #[inline]
    pub fn fired(&self) -> u64 {
        self.popped
    }

    /// Number of events fired so far on `lane`.
    #[inline]
    pub fn fired_on(&self, lane: usize) -> u64 {
        self.popped_per_lane[lane]
    }

    /// Number of events waiting across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    /// Whether no events are pending in any lane.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.is_empty())
    }

    /// Schedules `event` on `lane` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite time or a time earlier than [`Self::now`],
    /// mirroring [`crate::EventQueue::schedule`].
    pub fn schedule(&mut self, lane: usize, time: SimTime, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        assert!(
            time >= self.now,
            "cannot schedule into the past: t={time} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[lane].push(LaneEntry { time, seq, event });
    }

    /// Schedules `event` on `lane` to fire `delay` seconds from now.
    pub fn schedule_in(&mut self, lane: usize, delay: SimTime, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(lane, self.now + delay, event);
    }

    /// Firing time of the globally next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_lane().map(|l| self.lanes[l].peek().unwrap().time)
    }

    /// Lane holding the globally next event by `(time, seq)`.
    fn min_lane(&self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some(e) = lane.peek() {
                let key = (e.time, e.seq, i);
                let better = match best {
                    None => true,
                    Some((bt, bs, _)) => {
                        e.time.total_cmp(&bt).then_with(|| e.seq.cmp(&bs)) == Ordering::Less
                    }
                };
                if better {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Pops the globally next event, advancing the clock; returns the
    /// firing time, the lane it fired on, and the event.
    pub fn pop(&mut self) -> Option<(SimTime, usize, E)> {
        let lane = self.min_lane()?;
        let e = self.lanes[lane].pop().expect("peeked lane is non-empty");
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        self.popped += 1;
        self.popped_per_lane[lane] += 1;
        Some((e.time, lane, e.event))
    }

    /// Drops all pending events (the clock is unchanged).
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
    }
}

// ---------------------------------------------------------------------------
// Conservative window engine
// ---------------------------------------------------------------------------

/// A cross-lane message buffered in an outbox until the next barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossMsg<E> {
    /// Absolute firing time at the destination.
    pub time: SimTime,
    /// Destination lane.
    pub dst: usize,
    /// Source lane (first canonical tie-break).
    pub src: usize,
    /// Source-lane emission sequence (second canonical tie-break).
    pub src_seq: u64,
    /// The payload event.
    pub event: E,
}

/// Sorts cross-lane messages into the canonical apply order:
/// `(time, source lane, source sequence)`.
///
/// Applying messages in this order makes barrier delivery independent
/// of the order lanes were drained in — the schedule-independence
/// property the barrier-ordering proptest pins.
pub fn canonical_sort<E>(msgs: &mut [CrossMsg<E>]) {
    msgs.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then_with(|| a.src.cmp(&b.src))
            .then_with(|| a.src_seq.cmp(&b.src_seq))
    });
}

/// Per-lane event queue used by [`run_windows`].
///
/// Unlike [`ShardedQueue`], each lane carries its *own* sequence
/// counter, so lanes can be drained concurrently without sharing
/// state; determinism across lanes is restored at barriers by the
/// canonical apply order.
pub struct LaneQueue<E> {
    heap: BinaryHeap<LaneEntry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for LaneQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LaneQueue<E> {
    /// An empty lane queue at time 0.
    pub fn new() -> Self {
        LaneQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `time` on this lane.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        assert!(
            time >= self.now,
            "cannot schedule into the past: t={time} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(LaneEntry { time, seq, event });
    }

    /// Events fired on this lane so far.
    #[inline]
    pub fn fired(&self) -> u64 {
        self.popped
    }

    /// Firing time of this lane's next event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn pop_before(&mut self, edge: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek().map(|e| e.time < edge) != Some(true) {
            return None;
        }
        let e = self.heap.pop().expect("peeked entry exists");
        self.now = e.time;
        self.popped += 1;
        Some((e.time, e.event))
    }
}

/// Handle through which a window handler schedules follow-up work.
pub struct Emitter<'a, E> {
    lane: usize,
    edge: SimTime,
    queue: &'a mut LaneQueue<E>,
    outbox: &'a mut Vec<CrossMsg<E>>,
    emit_seq: &'a mut u64,
}

impl<E> Emitter<'_, E> {
    /// Schedules `event` on the handler's own lane at time `time`.
    pub fn local(&mut self, time: SimTime, event: E) {
        self.queue.schedule(time, event);
    }

    /// Sends `event` to lane `dst` at time `time`, buffered until the
    /// window barrier.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current window edge: the
    /// window width is the engine's lookahead bound, and a cross-lane
    /// message inside the current window would be a causality
    /// violation under conservative synchronization.
    pub fn send(&mut self, dst: usize, time: SimTime, event: E) {
        assert!(
            time >= self.edge,
            "cross-lane message at t={time} violates the window edge {}: \
             window width must not exceed the minimum cross-shard latency",
            self.edge
        );
        let src_seq = *self.emit_seq;
        *self.emit_seq += 1;
        self.outbox.push(CrossMsg {
            time,
            dst,
            src: self.lane,
            src_seq,
            event,
        });
    }
}

/// Runs lanes under conservative time-window synchronization until all
/// queues drain or `horizon` is reached; returns total events fired.
///
/// Each round: every lane independently drains its queue up to the next
/// window edge (`k * window`), handing each event to `handler` together
/// with the lane's mutable state and an [`Emitter`]. When `parallel` is
/// true each lane drains on its own scoped thread; either way the
/// per-lane work is identical because lanes share nothing inside a
/// window. At the barrier the collected outboxes are applied in
/// [`canonical_sort`] order, so the result is independent of thread
/// scheduling and collection order.
pub fn run_windows<E, L, F>(
    states: &mut [L],
    queues: &mut [LaneQueue<E>],
    window: SimTime,
    horizon: SimTime,
    parallel: bool,
    handler: F,
) -> u64
where
    E: Send,
    L: Send,
    F: Fn(usize, &mut L, SimTime, E, &mut Emitter<'_, E>) + Sync,
{
    assert_eq!(states.len(), queues.len(), "one state per lane");
    assert!(
        window > 0.0 && window.is_finite(),
        "window must be positive"
    );
    let parallel = parallel && host_threads() > 1;
    let lanes = states.len();
    let mut emit_seqs = vec![0u64; lanes];
    let mut edge = window;
    while edge <= horizon + window {
        if queues.iter().all(|q| q.heap.is_empty()) {
            break;
        }
        // Skip empty windows: jump straight to the window containing
        // the earliest pending event.
        if let Some(first) = queues
            .iter()
            .filter_map(|q| q.peek_time())
            .min_by(|a, b| a.total_cmp(b))
        {
            if first >= edge {
                let k = (first / window).floor() as u64 + 1;
                edge = k as SimTime * window;
            }
        }
        let drain_one = |lane: usize,
                         state: &mut L,
                         queue: &mut LaneQueue<E>,
                         emit_seq: &mut u64|
         -> Vec<CrossMsg<E>> {
            let mut outbox = Vec::new();
            while let Some((t, ev)) = queue.pop_before(edge) {
                let mut em = Emitter {
                    lane,
                    edge,
                    queue,
                    outbox: &mut outbox,
                    emit_seq,
                };
                handler(lane, state, t, ev, &mut em);
            }
            outbox
        };
        let mut outboxes: Vec<Vec<CrossMsg<E>>> = if parallel && lanes > 1 {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(lanes);
                for (((lane, state), queue), emit_seq) in states
                    .iter_mut()
                    .enumerate()
                    .zip(queues.iter_mut())
                    .zip(emit_seqs.iter_mut())
                {
                    handles.push(scope.spawn(move || drain_one(lane, state, queue, emit_seq)));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("lane drain panicked"))
                    .collect()
            })
        } else {
            states
                .iter_mut()
                .enumerate()
                .zip(queues.iter_mut())
                .zip(emit_seqs.iter_mut())
                .map(|(((lane, state), queue), emit_seq)| drain_one(lane, state, queue, emit_seq))
                .collect()
        };
        // Barrier: apply cross-lane messages in canonical order.
        let mut cross: Vec<CrossMsg<E>> = outboxes.drain(..).flatten().collect();
        canonical_sort(&mut cross);
        for msg in cross {
            queues[msg.dst].schedule(msg.time, msg.event);
        }
        edge += window;
    }
    queues.iter().map(|q| q.fired()).sum()
}

// ---------------------------------------------------------------------------
// Lane fan-out helper
// ---------------------------------------------------------------------------

/// Usable hardware parallelism. Worker-thread requests are clamped to
/// this so a shard count above the core count degrades to sequential
/// execution instead of paying spawn overhead for no gain — results
/// are positionally identical either way.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(lane)` for every lane in `0..lanes`, returning results in
/// lane order.
///
/// With `threads <= 1` (or a single lane) this is a plain sequential
/// loop; otherwise lanes are claimed from an atomic counter by up to
/// `min(threads, lanes)` scoped threads. The output is positionally
/// identical either way, so callers may treat thread count as a pure
/// performance knob — which is exactly how the sharded barrier phases
/// use it.
pub fn run_lanes<R: Send>(threads: usize, lanes: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = threads.min(host_threads());
    if threads <= 1 || lanes <= 1 {
        return (0..lanes).map(f).collect();
    }
    // Same shape as core's parallel_map: claim indexes from an atomic
    // counter, accumulate (index, result) pairs locally, merge after
    // the joins so no results lock is ever contended.
    let workers = threads.min(lanes);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut merged: Vec<Option<R>> = (0..lanes).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= lanes {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("lane worker panicked") {
                merged[i] = Some(r);
            }
        }
    });
    merged
        .into_iter()
        .map(|r| r.expect("every lane produced a result"))
        .collect()
}

/// Runs `f(index, item)` over owned work items, returning results in
/// input order.
///
/// The owned-item counterpart of [`run_lanes`], for work that carries
/// exclusive references (e.g. one mutable slice chunk per dimension):
/// each item sits in a private mutex slot locked exactly once by the
/// worker that claims its index, so the closure takes ownership without
/// any shared-results lock. `threads <= 1` degrades to a sequential
/// loop with positionally identical output.
pub fn parallel_items<T: Send, R: Send>(
    threads: usize,
    items: Vec<T>,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.min(host_threads());
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let workers = threads.min(n);
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut merged: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("work slot poisoned")
                            .take()
                            .expect("slot claimed twice");
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("item worker panicked") {
                merged[i] = Some(r);
            }
        }
    });
    merged
        .into_iter()
        .map(|r| r.expect("every item produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_tiles_and_covers() {
        for dims in [1usize, 2, 3, 11] {
            for shards in [1usize, 2, 3, 4, 7, 8, 16] {
                let part = RegionPartition::new(dims, shards);
                assert_eq!(part.regions().len(), shards);
                let total: f64 = part.regions().iter().map(Region::volume).sum();
                assert!((total - 1.0).abs() < 1e-9, "volumes must tile: {total}");
                // Tree lookup agrees with region containment.
                let mut point = vec![0.0; dims];
                for i in 0..64 {
                    for (d, p) in point.iter_mut().enumerate() {
                        *p = ((i * 37 + d * 11) % 97) as f64 / 97.0;
                    }
                    let s = part.shard_of(&point);
                    assert!(part.regions()[s].contains(&point));
                    let containing = part.regions().iter().filter(|r| r.contains(&point)).count();
                    assert_eq!(containing, 1, "point must lie in exactly one region");
                }
            }
        }
    }

    #[test]
    fn partition_wraps_torus_coordinates() {
        let part = RegionPartition::new(2, 4);
        assert_eq!(part.shard_of(&[1.25, -0.75]), part.shard_of(&[0.25, 0.25]));
    }

    #[test]
    fn sharded_queue_merges_identically_to_single_queue() {
        use crate::EventQueue;
        let mut single = EventQueue::new();
        let mut sharded = ShardedQueue::new(4);
        let times = [3.0, 1.0, 2.0, 2.0, 5.0, 2.0, 1.0, 9.0, 4.0, 4.0];
        for (i, t) in times.iter().enumerate() {
            single.schedule(*t, i);
            sharded.schedule(i % 4, *t, i);
        }
        loop {
            match (single.pop(), sharded.pop()) {
                (None, None) => break,
                (Some((ts, es)), Some((tq, _, eq))) => {
                    assert_eq!(ts, tq);
                    assert_eq!(es, eq);
                }
                other => panic!("queues diverged: {other:?}"),
            }
        }
        assert_eq!(single.fired(), sharded.fired());
    }

    #[test]
    fn sharded_queue_interleaves_schedule_and_pop() {
        let mut q = ShardedQueue::new(2);
        q.schedule(0, 1.0, "a");
        q.schedule(1, 4.0, "d");
        assert_eq!(q.pop().unwrap().2, "a");
        q.schedule_in(1, 1.0, "b");
        q.schedule(0, 3.0, "c");
        assert_eq!(q.pop().unwrap().2, "b");
        assert_eq!(q.pop().unwrap().2, "c");
        assert_eq!(q.pop().unwrap().2, "d");
        assert_eq!(q.fired_on(0), 2);
        assert_eq!(q.fired_on(1), 2);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn sharded_queue_rejects_past() {
        let mut q = ShardedQueue::new(2);
        q.schedule(0, 10.0, ());
        q.pop();
        q.schedule(1, 5.0, ());
    }

    #[test]
    fn canonical_sort_is_permutation_invariant() {
        let mk = |time, src, src_seq| CrossMsg {
            time,
            dst: 0,
            src,
            src_seq,
            event: (),
        };
        let base = vec![
            mk(2.0, 1, 0),
            mk(1.0, 2, 3),
            mk(1.0, 0, 1),
            mk(1.0, 0, 0),
            mk(2.0, 0, 5),
        ];
        let mut a = base.clone();
        let mut b: Vec<_> = base.into_iter().rev().collect();
        canonical_sort(&mut a);
        canonical_sort(&mut b);
        assert_eq!(a, b);
    }

    /// Toy world: each lane holds a counter; events ping-pong between
    /// lanes across windows. Sequential and parallel drains must agree.
    #[test]
    fn window_engine_parallel_matches_sequential() {
        #[derive(Clone)]
        struct Lane {
            digest: u64,
        }
        let lanes = 4usize;
        let run = |parallel: bool| -> (u64, Vec<u64>) {
            let mut states: Vec<Lane> = (0..lanes).map(|_| Lane { digest: 0xcbf29ce4 }).collect();
            let mut queues: Vec<LaneQueue<u64>> = (0..lanes).map(|_| LaneQueue::new()).collect();
            for (l, q) in queues.iter_mut().enumerate() {
                q.schedule(0.1 + l as f64 * 0.05, l as u64);
            }
            let fired = run_windows(
                &mut states,
                &mut queues,
                1.0,
                40.0,
                parallel,
                |lane, state, t, ev, em| {
                    state.digest = state
                        .digest
                        .wrapping_mul(0x100000001b3)
                        .wrapping_add(ev ^ t.to_bits());
                    if t < 30.0 {
                        // Local follow-up inside the window plus a
                        // cross-lane send landing beyond the edge.
                        if ev % 3 == 0 {
                            em.local(t + 0.25, ev.wrapping_mul(7) % 100);
                        }
                        let dst = (lane + 1 + (ev as usize % (lanes - 1))) % lanes;
                        em.send(dst, t.floor() + 1.0 + (ev % 5) as f64 * 0.3, ev + 1);
                    }
                },
            );
            (fired, states.into_iter().map(|s| s.digest).collect())
        };
        let seq = run(false);
        let par = run(true);
        assert_eq!(seq, par, "parallel window drain must be bit-identical");
        assert!(seq.0 > 100, "toy world should generate real traffic");
    }

    #[test]
    #[should_panic(expected = "window edge")]
    fn cross_lane_send_inside_window_panics() {
        let mut states = vec![(), ()];
        let mut queues: Vec<LaneQueue<u8>> = vec![LaneQueue::new(), LaneQueue::new()];
        queues[0].schedule(0.5, 1);
        run_windows(
            &mut states,
            &mut queues,
            1.0,
            10.0,
            false,
            |_, _, t, _, em| {
                em.send(1, t + 0.1, 2); // lands inside the current window
            },
        );
    }

    #[test]
    fn run_lanes_matches_sequential_order() {
        let seq = run_lanes(1, 9, |i| i * i);
        let par = run_lanes(4, 9, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(par[8], 64);
    }
}
