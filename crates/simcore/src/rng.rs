//! Seedable randomness and the hand-rolled distributions the synthetic
//! workload model needs.
//!
//! Everything is built on a vendored xoshiro256++ generator seeded
//! explicitly, so that a `(seed, configuration)` pair fully determines
//! a simulation with **zero external dependencies**: the sampling
//! algorithms can never shift underneath us through a crate upgrade,
//! and the workspace builds in fully offline environments.
//! Distributions are implemented here for the same reason.

/// The workspace's random number generator.
///
/// ```
/// use pgrid_simcore::SimRng;
/// let mut a = SimRng::seed_from_u64(1);
/// let mut b = SimRng::seed_from_u64(1);
/// assert_eq!(a.unit(), b.unit()); // fully deterministic
/// assert!((0.0..1.0).contains(&a.unit()));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256++ state (never all-zero: seeded via SplitMix64).
    s: [u64; 4],
}

/// SplitMix64 step — used to derive independent sub-stream seeds from a
/// master seed without correlation between streams.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of an independent sub-stream (e.g. "node
/// generation" vs "job arrivals") from a master seed.
#[inline]
pub fn sub_seed(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

impl SimRng {
    /// A generator seeded from a 64-bit seed (state expanded with
    /// SplitMix64, the reference seeding procedure for xoshiro).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(x.wrapping_sub(0x9E37_79B9_7F4A_7C15))
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 output over distinct inputs is never all-zero in
        // practice; guard anyway so the generator cannot degenerate.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        SimRng { s }
    }

    /// An independent sub-stream generator (see [`sub_seed`]).
    pub fn sub_stream(master: u64, stream: u64) -> Self {
        SimRng::seed_from_u64(sub_seed(master, stream))
    }

    /// Uniform sample in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "uniform range must be non-empty");
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)` (widening-multiply range reduction;
    /// the modulo bias is below 2⁻⁶⁴·n — immaterial for simulation).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.unit() < p
    }

    /// Exponential sample with the given mean — inter-arrival times of
    /// a Poisson process (paper §V-A: "The interval between individual
    /// job submissions follows a Poisson distribution").
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse-CDF; 1 - unit() is in (0, 1], so ln is finite.
        -mean * (1.0 - self.unit()).ln()
    }

    /// Samples an index from a non-empty slice of non-negative weights.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty());
        debug_assert!(weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // floating-point edge: land on the last bucket
    }

    /// Samples a capability *tier* in `[0, tiers)` with geometrically
    /// decreasing probability (ratio `decay` < 1 between successive
    /// tiers). Models the evaluation's "high percentage of the nodes
    /// and jobs have relatively low resource capabilities and
    /// requirements ... a common node capability distribution in grid
    /// environments".
    pub fn skewed_tier(&mut self, tiers: usize, decay: f64) -> usize {
        debug_assert!(tiers > 0);
        debug_assert!(decay > 0.0 && decay < 1.0);
        let mut weights = Vec::with_capacity(tiers);
        let mut w = 1.0;
        for _ in 0..tiers {
            weights.push(w);
            w *= decay;
        }
        self.weighted_choice(&weights)
    }

    /// Uniform element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Raw 64-bit output (for deriving ids, virtual coordinates, ...):
    /// one xoshiro256++ step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn sub_streams_are_independent_of_order() {
        assert_eq!(sub_seed(7, 1), sub_seed(7, 1));
        assert_ne!(sub_seed(7, 1), sub_seed(7, 2));
        assert_ne!(sub_seed(7, 1), sub_seed(8, 1));
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.uniform(1800.0, 5400.0);
            assert!((1800.0..5400.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.05,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = SimRng::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!(r.exponential(1.0) >= 0.0);
        }
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = SimRng::seed_from_u64(7);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_choice(&weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket must never be chosen");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio} should be ~3");
    }

    #[test]
    fn skewed_tier_prefers_low_tiers() {
        let mut r = SimRng::seed_from_u64(8);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.skewed_tier(4, 0.5)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert!(counts[3] > 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(9);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::seed_from_u64(11);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
