//! Deterministic-simulation-testing (DST) primitives: randomized fault
//! *schedules*, a self-contained replayable trace format, and a
//! delta-debugging shrinker.
//!
//! The scripted chaos scenarios (`pgrid-can`'s `chaos` module) sample
//! three hand-written points of the fault-schedule space. This module
//! supplies the machinery to *search* that space FoundationDB-style:
//!
//! * [`FaultSchedule`] — one fully-specified chaos run: population,
//!   scheme, phase lengths, node-fault events, partition windows,
//!   per-class network faults, optional churn, and an optional
//!   scheduler phase. It carries everything needed to replay the run
//!   bit for bit, with no out-of-band state.
//! * [`ScheduleBudget`] + [`generate`] — a seeded sampler that draws a
//!   schedule from a bounded grammar. Same seed, same budget → same
//!   schedule, always.
//! * [`FaultSchedule::to_text`] / [`FaultSchedule::parse`] — a
//!   line-oriented text trace format. `f64` values round-trip exactly
//!   through Rust's shortest-representation `Display`, so a parsed
//!   trace replays bit-identically.
//! * [`shrink`] — complement-removal delta debugging (ddmin) plus a
//!   per-event count-reduction pass, minimizing a failing schedule to
//!   a near-minimal event sequence under a bounded probe budget.
//! * [`Fnv`] — the workspace's FNV-1a digest, used to fingerprint
//!   replay outcomes (`expect digest=…` lines in corpus traces).
//!
//! The executors live one layer up (`pgrid-can::dst`, `pgrid`'s `fuzz`
//! module); this module is pure data and therefore has no opinion on
//! what a violation *is*.

use crate::fault::{ClassFaults, FaultEvent, MsgClass, NodeFault};
use crate::rng::SimRng;
use crate::SimTime;
use std::fmt;

/// RNG sub-stream tag for schedule generation (disjoint from the
/// executor streams 0xFA17 / 0xC4A5 / 0x71C7).
const GEN_STREAM: u64 = 0xD57;

/// RNG sub-stream tag for macro expansion ([`FaultSchedule::expand`]),
/// disjoint from the generator and executor streams so expanding a
/// schedule never perturbs victim sampling or message fates.
const MACRO_STREAM: u64 = 0x5CE0;

// ---------------------------------------------------------------------------
// FNV-1a digest
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a hasher, the same function the golden-digest tests use.
///
/// Used to fingerprint replay outcomes: a corpus trace records the
/// digest of its replay, and the regression gate asserts the digest is
/// reproduced bit-identically.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (as `u64`).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by bit pattern, so `-0.0` ≠ `0.0` and NaN
    /// payloads matter — exactly what bit-identical replay wants.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string's UTF-8 bytes plus a length prefix.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

// ---------------------------------------------------------------------------
// Schedule data model
// ---------------------------------------------------------------------------

/// A scheduled partition window in fault-phase-relative time, as a
/// fraction of the then-current membership (victims are sampled by the
/// executor from the schedule seed, so the trace needs no node ids).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    /// Fraction of members to isolate (0..1).
    pub fraction: f64,
    /// Window start, seconds after the fault phase begins.
    pub from: SimTime,
    /// Window end, seconds after the fault phase begins; must satisfy
    /// `from < until <= fault_duration` so recovery starts healthy.
    pub until: SimTime,
}

/// A scheduled directed-link degradation in fault-phase-relative time.
/// The executor samples `pairs` directed member pairs from the schedule
/// seed (so the trace needs no node ids) and degrades them with extra
/// loss and jitter over the window — the asymmetric-lag shape that
/// stresses a per-link adaptive failure detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeWindow {
    /// Number of directed member pairs to degrade (>= 1).
    pub pairs: usize,
    /// Extra drop probability on the degraded links (in `[0, 1)`).
    pub drop: f64,
    /// Extra uniform `[0, jitter)` delay on surviving transmissions.
    pub jitter: f64,
    /// Window start, seconds after the fault phase begins.
    pub from: SimTime,
    /// Window end, seconds after the fault phase begins; must satisfy
    /// `from < until <= fault_duration`.
    pub until: SimTime,
}

/// A composable schedule macro: one named adversarial pattern that
/// [`FaultSchedule::expand`] lowers into primitive events and degrade
/// windows before execution.
///
/// Macros keep their *structure* (kinds, counts, windows) fixed by the
/// record itself; only timing offsets are drawn from the schedule seed
/// during expansion. Two expansions of the same schedule are therefore
/// identical, and two seeds differ only in RNG-derived times — never in
/// which primitives appear. All times are fault-phase-relative seconds,
/// like the primitives they lower to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleMacro {
    /// Sinusoidal diurnal availability: each cycle crashes `amplitude`
    /// nodes near its trough and rejoins `amplitude` near its peak —
    /// the desktop-grid evening-shutdown / morning-return wave.
    Wave {
        /// Length of one availability cycle (seconds).
        period: f64,
        /// Nodes leaving (then returning) per cycle.
        amplitude: usize,
        /// Number of cycles.
        cycles: usize,
        /// First cycle's start, seconds into the fault phase.
        from: SimTime,
    },
    /// Flash crowd: a join burst at `at` plus an arrival-rate
    /// multiplier the workload layer applies over `[at, at+duration)`.
    /// Half the crowd churns away again when the window closes.
    Spike {
        /// Burst instant, seconds into the fault phase.
        at: SimTime,
        /// Joiners in the burst.
        joins: usize,
        /// Arrival-rate multiplier during the window (workload hook;
        /// carried in the trace so replays shape the same workload).
        rate: f64,
        /// Window length (seconds).
        duration: f64,
    },
    /// Correlated rack failures: `racks` crash bursts of `size` nodes
    /// each, spaced `gap` seconds apart (plus bounded seed jitter) —
    /// the generalization of the hand-written rack-crash-storm trace.
    RackStorm {
        /// First burst instant, seconds into the fault phase.
        at: SimTime,
        /// Number of correlated bursts.
        racks: usize,
        /// Victims per burst.
        size: usize,
        /// Nominal spacing between bursts (seconds).
        gap: f64,
    },
    /// Sustained slow nodes: one degraded-link window over `[from,
    /// until)` plus `freezes` single-node freezes of `freeze_secs`
    /// scattered across it — stragglers the detector must tolerate
    /// without expelling.
    Straggler {
        /// Directed member pairs to degrade.
        pairs: usize,
        /// Extra drop probability on the degraded links (in `[0, 1)`).
        drop: f64,
        /// Extra uniform `[0, jitter)` delay on surviving sends.
        jitter: f64,
        /// Scattered single-node freezes inside the window.
        freezes: usize,
        /// Length of each freeze (seconds).
        freeze_secs: f64,
        /// Window start, seconds into the fault phase.
        from: SimTime,
        /// Window end, seconds into the fault phase.
        until: SimTime,
    },
    /// Gray failure: the same links are degraded twice — once loss-only
    /// and once lag-only — so a link is simultaneously lossy *and*
    /// slow, the asymmetric partial degrade an adaptive per-link
    /// detector must out-diagnose where a fixed timeout either expels
    /// the victim or goes blind.
    GrayFail {
        /// Directed member pairs to degrade.
        pairs: usize,
        /// Drop probability on the lossy half (in `[0, 1)`).
        drop: f64,
        /// Uniform `[0, delay)` lag on the slow half (seconds).
        delay: f64,
        /// Window start, seconds into the fault phase.
        from: SimTime,
        /// Window end, seconds into the fault phase.
        until: SimTime,
    },
}

impl ScheduleMacro {
    /// Number of primitive elements (events + degrade windows) this
    /// macro lowers to — structural, independent of the seed.
    pub fn expansion_count(&self) -> usize {
        match *self {
            ScheduleMacro::Wave { cycles, .. } => 2 * cycles,
            ScheduleMacro::Spike { .. } => 2,
            ScheduleMacro::RackStorm { racks, .. } => racks,
            ScheduleMacro::Straggler { freezes, .. } => 1 + freezes,
            ScheduleMacro::GrayFail { .. } => 2,
        }
    }

    /// Checks ranges and that the macro's whole footprint fits inside
    /// the fault phase.
    fn validate(&self, fault_duration: f64) -> Result<(), String> {
        fn finite_pos(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be finite and positive, got {v}"))
            }
        }
        fn window(name: &str, from: f64, until: f64, horizon: f64) -> Result<(), String> {
            if from >= 0.0 && from < until && until <= horizon {
                Ok(())
            } else {
                Err(format!(
                    "{name} window [{from}, {until}] must satisfy 0 <= from < until <= {horizon}"
                ))
            }
        }
        if self.expansion_count() == 0 {
            return Err("macro expands to zero events".into());
        }
        match *self {
            ScheduleMacro::Wave {
                period,
                amplitude,
                cycles,
                from,
            } => {
                finite_pos("wave period", period)?;
                if amplitude == 0 {
                    return Err("wave amplitude must be >= 1".into());
                }
                window("wave", from, from + cycles as f64 * period, fault_duration)
            }
            ScheduleMacro::Spike {
                at,
                joins,
                rate,
                duration,
            } => {
                if joins == 0 {
                    return Err("spike joins must be >= 1".into());
                }
                finite_pos("spike rate", rate)?;
                finite_pos("spike duration", duration)?;
                window("spike", at, at + duration, fault_duration)
            }
            ScheduleMacro::RackStorm {
                at,
                racks,
                size,
                gap,
            } => {
                if racks == 0 || size == 0 {
                    return Err("rackstorm racks and size must be >= 1".into());
                }
                finite_pos("rackstorm gap", gap)?;
                window("rackstorm", at, at + racks as f64 * gap, fault_duration)
            }
            ScheduleMacro::Straggler {
                pairs,
                drop,
                jitter,
                freezes,
                freeze_secs,
                from,
                until,
            } => {
                if pairs == 0 {
                    return Err("straggler pairs must be >= 1".into());
                }
                if !(0.0..1.0).contains(&drop) {
                    return Err(format!("straggler drop must be in [0, 1), got {drop}"));
                }
                if !(jitter.is_finite() && jitter >= 0.0) {
                    return Err(format!(
                        "straggler jitter must be finite >= 0, got {jitter}"
                    ));
                }
                finite_pos("straggler freeze_secs", freeze_secs)?;
                window("straggler", from, until, fault_duration)?;
                if freezes > 0 && freeze_secs > until - from {
                    return Err(format!(
                        "straggler freeze_secs {freeze_secs} exceeds the window [{from}, {until}]"
                    ));
                }
                Ok(())
            }
            ScheduleMacro::GrayFail {
                pairs,
                drop,
                delay,
                from,
                until,
            } => {
                if pairs == 0 {
                    return Err("grayfail pairs must be >= 1".into());
                }
                if !(0.0..1.0).contains(&drop) {
                    return Err(format!("grayfail drop must be in [0, 1), got {drop}"));
                }
                finite_pos("grayfail delay", delay)?;
                window("grayfail", from, until, fault_duration)
            }
        }
    }

    /// Lowers this macro into primitive events and degrade windows.
    /// Only *times* are drawn from `rng`; counts and kinds come from
    /// the record, so expansion structure is seed-invariant.
    fn expand_into(
        &self,
        rng: &mut SimRng,
        horizon: f64,
        events: &mut Vec<FaultEvent>,
        degrades: &mut Vec<DegradeWindow>,
    ) {
        let clamp = |t: f64, lo: f64, hi: f64| t.clamp(lo, hi.min(horizon));
        match *self {
            ScheduleMacro::Wave {
                period,
                amplitude,
                cycles,
                from,
            } => {
                // Stepwise sinusoid: the trough (shutdown) sits a
                // quarter period in, the peak (return) three quarters
                // in, each nudged by up to ±5 % of the period.
                for c in 0..cycles {
                    let base = from + c as f64 * period;
                    let nudge = period * 0.05;
                    let trough = clamp(
                        base + period * 0.25 + rng.uniform(-nudge, nudge),
                        base,
                        base + period,
                    );
                    let peak = clamp(
                        base + period * 0.75 + rng.uniform(-nudge, nudge),
                        trough,
                        base + period,
                    );
                    events.push(FaultEvent {
                        at: trough,
                        fault: NodeFault::Crash { count: amplitude },
                    });
                    events.push(FaultEvent {
                        at: peak,
                        fault: NodeFault::Rejoin { count: amplitude },
                    });
                }
            }
            ScheduleMacro::Spike {
                at,
                joins,
                duration,
                ..
            } => {
                // The join burst lands at `at`; half the crowd churns
                // away when the window closes. `rate` is consumed by
                // the workload layer, not the fault executor.
                events.push(FaultEvent {
                    at,
                    fault: NodeFault::Rejoin { count: joins },
                });
                events.push(FaultEvent {
                    at: clamp(at + duration, at, horizon),
                    fault: NodeFault::Crash {
                        count: (joins / 2).max(1),
                    },
                });
            }
            ScheduleMacro::RackStorm {
                at,
                racks,
                size,
                gap,
            } => {
                for r in 0..racks {
                    let base = at + r as f64 * gap;
                    let t = clamp(base + rng.uniform(0.0, gap * 0.2), base, base + gap);
                    events.push(FaultEvent {
                        at: t,
                        fault: NodeFault::Crash { count: size },
                    });
                }
            }
            ScheduleMacro::Straggler {
                pairs,
                drop,
                jitter,
                freezes,
                freeze_secs,
                from,
                until,
            } => {
                degrades.push(DegradeWindow {
                    pairs,
                    drop,
                    jitter,
                    from,
                    until,
                });
                for _ in 0..freezes {
                    let latest = (until - freeze_secs).max(from);
                    events.push(FaultEvent {
                        at: rng.uniform(from, latest),
                        fault: NodeFault::Freeze {
                            count: 1,
                            duration: freeze_secs,
                        },
                    });
                }
            }
            ScheduleMacro::GrayFail {
                pairs,
                drop,
                delay,
                from,
                until,
            } => {
                // Two windows over the *same* sampled pair budget: one
                // lossy, one laggy. The executor samples victim pairs
                // per window from the shared victim stream, so the two
                // halves land on overlapping neighborhoods — partial,
                // asymmetric degradation rather than a clean outage.
                degrades.push(DegradeWindow {
                    pairs,
                    drop,
                    jitter: 0.0,
                    from,
                    until,
                });
                degrades.push(DegradeWindow {
                    pairs,
                    drop: 0.0,
                    jitter: delay,
                    from,
                    until,
                });
            }
        }
    }
}

/// Overload-control arming record for the scheduler phase.
///
/// Mirrors `pgrid-sched`'s `OverloadConfig` but stays a plain record
/// so `simcore` remains independent of `sched`, the same layering
/// compromise as `scheme` / `detector` / `replication`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadRecord {
    /// Per-node queue bound in waiting slots.
    pub slots: usize,
    /// Per-job queue-wait bound (seconds).
    pub wait: f64,
    /// Retry token-bucket burst per job.
    pub burst: u32,
    /// Retry token refill rate (tokens per second).
    pub refill: f64,
}

/// One fully-specified, self-contained chaos run.
///
/// Everything an executor needs is here; replaying the same schedule
/// twice produces bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Master seed: drives bootstrap coordinates, victim sampling,
    /// message fates, and churn decisions in the executor.
    pub seed: u64,
    /// Heartbeat scheme label (`vanilla` / `compact` / `adaptive`).
    /// Kept as a string so `simcore` stays independent of `can`.
    pub scheme: String,
    /// CAN dimensionality.
    pub dims: usize,
    /// Bootstrap population.
    pub nodes: usize,
    /// Fault-free settle window after bootstrap (seconds).
    pub settle_time: f64,
    /// Heartbeat period (seconds).
    pub heartbeat_period: f64,
    /// Failure-detection timeout (seconds).
    pub fail_timeout: f64,
    /// Length of the fault phase (seconds).
    pub fault_duration: f64,
    /// Recovery allowance after the fault phase, in heartbeat periods.
    pub recovery_periods: f64,
    /// Fraction of churn departures that are graceful.
    pub graceful_fraction: f64,
    /// Gap between background churn events (`None` disables churn).
    pub churn_gap: Option<f64>,
    /// Per-class network faults, active during the fault phase only.
    pub class_faults: Vec<(MsgClass, ClassFaults)>,
    /// Partition windows, in fault-phase-relative time.
    pub partitions: Vec<PartitionWindow>,
    /// Directed-link degradation windows, in fault-phase-relative time.
    pub degrades: Vec<DegradeWindow>,
    /// Node-level fault events, in fault-phase-relative time.
    pub events: Vec<FaultEvent>,
    /// Composable macro records; [`FaultSchedule::expand`] lowers them
    /// into primitives before execution. Empty on generated schedules
    /// (the fuzzer grammar stays macro-free so historical seeds keep
    /// their schedules); the scenario library is what writes these.
    pub macros: Vec<ScheduleMacro>,
    /// Failure-detector mode label (`fixed` / `adaptive`); `None` runs
    /// the legacy passive expiry. Kept as a string so `simcore` stays
    /// independent of `can`, mirroring `scheme`.
    pub detector: Option<String>,
    /// Warm-standby replication mode label (`standby`); `None` runs
    /// the legacy cache-only crash recovery. Kept as a string for the
    /// same layering reason as `detector`.
    pub replication: Option<String>,
    /// When `Some`, also run a scheduler crash-recovery phase with this
    /// mean crash interval (seconds) and check the ledger oracles.
    pub sched_crash_interval: Option<f64>,
    /// When `Some`, the scheduler phase runs with bounded queues and
    /// admission control armed, and the bounded-queues / no-retry-storm
    /// oracles are checked. `None` (the default everywhere, including
    /// the fuzzer grammar) keeps historical schedules bit-identical.
    pub overload: Option<OverloadRecord>,
    /// Recorded replay digest (`None` until a corpus trace pins one).
    pub expect_digest: Option<u64>,
}

impl FaultSchedule {
    /// Total number of node-fault events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Sanity-checks the schedule against the executor's preconditions
    /// (finite non-negative times, `drop < 1`, partition windows inside
    /// the fault phase, positive freeze durations, …).
    pub fn validate(&self) -> Result<(), String> {
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be finite and positive, got {v}"))
            }
        }
        if self.dims == 0 || self.dims > 6 {
            return Err(format!("dims must be in 1..=6, got {}", self.dims));
        }
        if self.nodes < 4 {
            return Err(format!("nodes must be >= 4, got {}", self.nodes));
        }
        pos("settle", self.settle_time)?;
        pos("period", self.heartbeat_period)?;
        pos("timeout", self.fail_timeout)?;
        pos("fault", self.fault_duration)?;
        pos("recovery", self.recovery_periods)?;
        if !(0.0..=1.0).contains(&self.graceful_fraction) {
            return Err(format!(
                "graceful must be in [0, 1], got {}",
                self.graceful_fraction
            ));
        }
        if let Some(gap) = self.churn_gap {
            pos("churn gap", gap)?;
        }
        for &(_, f) in &self.class_faults {
            if !(0.0..1.0).contains(&f.drop) {
                return Err(format!("class drop must be in [0, 1), got {}", f.drop));
            }
            if !(0.0..=1.0).contains(&f.duplicate) {
                return Err(format!(
                    "class duplicate must be in [0, 1], got {}",
                    f.duplicate
                ));
            }
            if !(f.delay.is_finite() && f.delay >= 0.0) {
                return Err(format!("class delay must be finite >= 0, got {}", f.delay));
            }
            if !(f.jitter.is_finite() && f.jitter >= 0.0) {
                return Err(format!(
                    "class jitter must be finite >= 0, got {}",
                    f.jitter
                ));
            }
        }
        for p in &self.partitions {
            if !(0.0 < p.fraction && p.fraction < 1.0) {
                return Err(format!(
                    "partition fraction must be in (0, 1), got {}",
                    p.fraction
                ));
            }
            if !(p.from >= 0.0 && p.from < p.until && p.until <= self.fault_duration) {
                return Err(format!(
                    "partition window [{}, {}] must satisfy 0 <= from < until <= {}",
                    p.from, p.until, self.fault_duration
                ));
            }
        }
        for d in &self.degrades {
            if d.pairs == 0 {
                return Err("degrade pairs must be >= 1".into());
            }
            if !(0.0..1.0).contains(&d.drop) {
                return Err(format!("degrade drop must be in [0, 1), got {}", d.drop));
            }
            if !(d.jitter.is_finite() && d.jitter >= 0.0) {
                return Err(format!(
                    "degrade jitter must be finite >= 0, got {}",
                    d.jitter
                ));
            }
            if !(d.from >= 0.0 && d.from < d.until && d.until <= self.fault_duration) {
                return Err(format!(
                    "degrade window [{}, {}] must satisfy 0 <= from < until <= {}",
                    d.from, d.until, self.fault_duration
                ));
            }
        }
        if let Some(mode) = &self.detector {
            if mode != "fixed" && mode != "adaptive" {
                return Err(format!(
                    "detector mode must be `fixed` or `adaptive`, got `{mode}`"
                ));
            }
        }
        if let Some(mode) = &self.replication {
            if mode != "standby" {
                return Err(format!("replication mode must be `standby`, got `{mode}`"));
            }
        }
        for e in &self.events {
            if !(e.at.is_finite() && e.at >= 0.0 && e.at <= self.fault_duration) {
                return Err(format!(
                    "event at {} outside the fault phase [0, {}]",
                    e.at, self.fault_duration
                ));
            }
            match e.fault {
                NodeFault::Crash { count } | NodeFault::Rejoin { count } => {
                    if count == 0 {
                        return Err("event count must be >= 1".into());
                    }
                }
                NodeFault::Freeze { count, duration } => {
                    if count == 0 {
                        return Err("event count must be >= 1".into());
                    }
                    pos("freeze duration", duration)?;
                }
            }
        }
        if let Some(iv) = self.sched_crash_interval {
            pos("sched crash_interval", iv)?;
        }
        if let Some(o) = &self.overload {
            if o.slots == 0 {
                return Err("overload slots must be >= 1".into());
            }
            pos("overload wait", o.wait)?;
            if !(o.refill.is_finite() && o.refill >= 0.0) {
                return Err(format!(
                    "overload refill must be finite >= 0, got {}",
                    o.refill
                ));
            }
        }
        for m in &self.macros {
            m.validate(self.fault_duration)?;
        }
        Ok(())
    }

    /// Lowers every macro record into primitive events and degrade
    /// windows, returning a macro-free schedule that replays the same
    /// run. The identity for macro-free schedules, so every historical
    /// trace and golden digest is untouched.
    ///
    /// Deterministic: timing offsets are drawn from sub-stream
    /// `0x5CE0` of the schedule seed, in macro order, so expanding
    /// twice yields identical output and two seeds differ only in
    /// RNG-derived times, never in expansion structure.
    pub fn expand(&self) -> FaultSchedule {
        if self.macros.is_empty() {
            return self.clone();
        }
        let mut rng = SimRng::sub_stream(self.seed, MACRO_STREAM);
        let mut out = self.clone();
        out.macros.clear();
        for m in &self.macros {
            m.expand_into(
                &mut rng,
                self.fault_duration,
                &mut out.events,
                &mut out.degrades,
            );
        }
        // Stable sort: simultaneous events keep macro-emission order.
        out.events.sort_by(|a, b| a.at.total_cmp(&b.at));
        debug_assert!(out.validate().is_ok(), "expansion escaped the horizon");
        out
    }

    /// The arrival-rate multiplier windows carried by `spike` macros,
    /// as absolute-workload-time `(from, until, rate)` triples relative
    /// to the fault phase — the workload layer's shaping hook.
    pub fn arrival_windows(&self) -> Vec<(SimTime, SimTime, f64)> {
        self.macros
            .iter()
            .filter_map(|m| match *m {
                ScheduleMacro::Spike {
                    at, rate, duration, ..
                } => Some((at, at + duration, rate)),
                _ => None,
            })
            .collect()
    }

    // -- shrinker support ---------------------------------------------------

    /// Number of independently-removable schedule elements, in the
    /// fixed order: events, partitions, class faults, churn, sched,
    /// degrades, detector, replication, macros, overload (new kinds
    /// appended to keep the order stable).
    fn element_count(&self) -> usize {
        self.events.len()
            + self.partitions.len()
            + self.class_faults.len()
            + usize::from(self.churn_gap.is_some())
            + usize::from(self.sched_crash_interval.is_some())
            + self.degrades.len()
            + usize::from(self.detector.is_some())
            + usize::from(self.replication.is_some())
            + self.macros.len()
            + usize::from(self.overload.is_some())
    }

    /// The schedule with only the elements whose `keep` flag is set
    /// (indexed in [`Self::element_count`] order).
    fn with_elements(&self, keep: &[bool]) -> FaultSchedule {
        debug_assert_eq!(keep.len(), self.element_count());
        let mut out = self.clone();
        let mut it = keep.iter().copied();
        out.events = self
            .events
            .iter()
            .copied()
            .filter(|_| it.next().unwrap_or(true))
            .collect();
        out.partitions = self
            .partitions
            .iter()
            .copied()
            .filter(|_| it.next().unwrap_or(true))
            .collect();
        out.class_faults = self
            .class_faults
            .iter()
            .copied()
            .filter(|_| it.next().unwrap_or(true))
            .collect();
        if self.churn_gap.is_some() && !it.next().unwrap_or(true) {
            out.churn_gap = None;
        }
        if self.sched_crash_interval.is_some() && !it.next().unwrap_or(true) {
            out.sched_crash_interval = None;
        }
        out.degrades = self
            .degrades
            .iter()
            .copied()
            .filter(|_| it.next().unwrap_or(true))
            .collect();
        if self.detector.is_some() && !it.next().unwrap_or(true) {
            out.detector = None;
        }
        if self.replication.is_some() && !it.next().unwrap_or(true) {
            out.replication = None;
        }
        out.macros = self
            .macros
            .iter()
            .copied()
            .filter(|_| it.next().unwrap_or(true))
            .collect();
        if self.overload.is_some() && !it.next().unwrap_or(true) {
            out.overload = None;
        }
        out.expect_digest = None;
        out
    }
}

// ---------------------------------------------------------------------------
// Budgeted random generation
// ---------------------------------------------------------------------------

/// Bounds on the schedule grammar [`generate`] samples from.
///
/// Every sampled quantity is clamped inside the executor's
/// preconditions (drop `< 1`, partition windows inside the fault
/// phase, positive freeze durations), so a generated schedule always
/// passes [`FaultSchedule::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleBudget {
    /// Minimum CAN dimensionality.
    pub min_dims: usize,
    /// Maximum CAN dimensionality.
    pub max_dims: usize,
    /// Minimum bootstrap population.
    pub min_nodes: usize,
    /// Maximum bootstrap population.
    pub max_nodes: usize,
    /// Maximum node-fault events per schedule (at least 1 is drawn).
    pub max_events: usize,
    /// Maximum victims in one crash burst.
    pub max_crash: usize,
    /// Maximum joiners in one rejoin wave.
    pub max_rejoin: usize,
    /// Maximum victims in one freeze burst.
    pub max_freeze: usize,
    /// Maximum freeze length, in heartbeat periods.
    pub max_freeze_periods: f64,
    /// Maximum concurrent partition windows.
    pub max_partitions: usize,
    /// Maximum fraction of members one partition isolates.
    pub max_partition_fraction: f64,
    /// Maximum per-class drop probability (strictly below 1).
    pub max_drop: f64,
    /// Maximum per-class duplication probability.
    pub max_duplicate: f64,
    /// Maximum fixed per-class delay (seconds).
    pub max_delay: f64,
    /// Maximum per-class jitter (seconds).
    pub max_jitter: f64,
    /// Probability each message class gets a fault entry.
    pub class_fault_chance: f64,
    /// Maximum directed-link degradation windows per schedule.
    pub max_degrades: usize,
    /// Maximum directed pairs one degradation window covers.
    pub max_degrade_pairs: usize,
    /// Maximum extra drop probability on a degraded link (below 1).
    pub max_degrade_drop: f64,
    /// Maximum extra jitter on a degraded link (seconds).
    pub max_degrade_jitter: f64,
    /// Probability the schedule arms a failure detector (then split
    /// evenly between `fixed` and `adaptive`).
    pub detector_chance: f64,
    /// Probability the schedule arms warm-standby zone replication, so
    /// the fuzzer interleaves crashes with replica promotion.
    pub replication_chance: f64,
    /// Probability the schedule runs background churn.
    pub churn_chance: f64,
    /// Probability the schedule appends a scheduler crash phase.
    pub sched_chance: f64,
    /// Minimum fault-phase length (seconds).
    pub min_fault_duration: f64,
    /// Maximum fault-phase length (seconds).
    pub max_fault_duration: f64,
}

impl Default for ScheduleBudget {
    fn default() -> Self {
        ScheduleBudget {
            min_dims: 2,
            max_dims: 3,
            min_nodes: 24,
            max_nodes: 48,
            max_events: 6,
            max_crash: 8,
            max_rejoin: 6,
            max_freeze: 4,
            max_freeze_periods: 4.0,
            max_partitions: 2,
            max_partition_fraction: 0.3,
            max_drop: 0.35,
            max_duplicate: 0.2,
            max_delay: 5.0,
            max_jitter: 10.0,
            class_fault_chance: 0.4,
            max_degrades: 2,
            max_degrade_pairs: 4,
            max_degrade_drop: 0.6,
            max_degrade_jitter: 30.0,
            detector_chance: 0.5,
            replication_chance: 0.35,
            churn_chance: 0.4,
            sched_chance: 0.3,
            min_fault_duration: 300.0,
            max_fault_duration: 900.0,
        }
    }
}

impl ScheduleBudget {
    /// A smaller budget for CI smoke runs: fewer nodes and shorter
    /// fault phases, so a seed replays in well under a second.
    pub fn smoke() -> Self {
        ScheduleBudget {
            min_nodes: 20,
            max_nodes: 32,
            max_events: 4,
            min_fault_duration: 300.0,
            max_fault_duration: 600.0,
            ..ScheduleBudget::default()
        }
    }
}

/// Samples one fault schedule from `budget` under `seed`.
///
/// Deterministic: the sampler runs on sub-stream `0xD57` of `seed`, so
/// the same `(seed, budget)` pair always yields the same schedule.
pub fn generate(seed: u64, budget: &ScheduleBudget) -> FaultSchedule {
    let mut rng = SimRng::sub_stream(seed, GEN_STREAM);
    let dims = budget.min_dims + rng.below(budget.max_dims - budget.min_dims + 1);
    let nodes = budget.min_nodes + rng.below(budget.max_nodes - budget.min_nodes + 1);
    let scheme = ["vanilla", "compact", "adaptive"][rng.below(3)].to_string();
    let heartbeat_period = 60.0;
    let fail_timeout = 150.0;
    let fault_duration = rng.uniform(budget.min_fault_duration, budget.max_fault_duration);

    let mut events = Vec::new();
    let n_events = 1 + rng.below(budget.max_events.max(1));
    for _ in 0..n_events {
        let at = rng.uniform(0.0, fault_duration * 0.85);
        let fault = match rng.below(3) {
            0 => NodeFault::Crash {
                count: 1 + rng.below(budget.max_crash.max(1)),
            },
            1 => NodeFault::Rejoin {
                count: 1 + rng.below(budget.max_rejoin.max(1)),
            },
            _ => NodeFault::Freeze {
                count: 1 + rng.below(budget.max_freeze.max(1)),
                duration: rng.uniform(
                    heartbeat_period,
                    heartbeat_period * budget.max_freeze_periods,
                ),
            },
        };
        events.push(FaultEvent { at, fault });
    }
    events.sort_by(|a, b| a.at.total_cmp(&b.at));

    let mut partitions = Vec::new();
    for _ in 0..rng.below(budget.max_partitions + 1) {
        let fraction = rng.uniform(0.05, budget.max_partition_fraction);
        let from = rng.uniform(0.0, fault_duration * 0.5);
        let until = rng.uniform(from + 1.0, fault_duration);
        partitions.push(PartitionWindow {
            fraction,
            from,
            until,
        });
    }

    let mut class_faults = Vec::new();
    for &class in &MsgClass::ALL {
        if !rng.chance(budget.class_fault_chance) {
            continue;
        }
        let faults = ClassFaults {
            drop: rng.uniform(0.0, budget.max_drop),
            duplicate: if rng.chance(0.3) {
                rng.uniform(0.0, budget.max_duplicate)
            } else {
                0.0
            },
            delay: if rng.chance(0.3) {
                rng.uniform(0.0, budget.max_delay)
            } else {
                0.0
            },
            jitter: if rng.chance(0.3) {
                rng.uniform(0.0, budget.max_jitter)
            } else {
                0.0
            },
        };
        class_faults.push((class, faults));
    }

    let churn_gap = if rng.chance(budget.churn_chance) {
        Some(heartbeat_period / rng.uniform(2.0, 8.0))
    } else {
        None
    };
    let sched_crash_interval = if rng.chance(budget.sched_chance) {
        Some(rng.uniform(200.0, 900.0))
    } else {
        None
    };
    // Drawn in the historical stream position (before the detector
    // extensions below), so pre-existing seeds keep their schedules.
    let graceful_fraction = rng.uniform(0.0, 1.0);

    let mut degrades = Vec::new();
    for _ in 0..rng.below(budget.max_degrades + 1) {
        let from = rng.uniform(0.0, fault_duration * 0.5);
        let until = rng.uniform(from + 1.0, fault_duration);
        degrades.push(DegradeWindow {
            pairs: 1 + rng.below(budget.max_degrade_pairs.max(1)),
            drop: rng.uniform(0.0, budget.max_degrade_drop),
            jitter: if rng.chance(0.5) {
                rng.uniform(0.0, budget.max_degrade_jitter)
            } else {
                0.0
            },
            from,
            until,
        });
    }
    let detector = if rng.chance(budget.detector_chance) {
        Some(["fixed", "adaptive"][rng.below(2)].to_string())
    } else {
        None
    };
    // Appended after the detector draw so pre-existing seeds keep
    // their schedules up to this point.
    let replication = if rng.chance(budget.replication_chance) {
        Some("standby".to_string())
    } else {
        None
    };

    let schedule = FaultSchedule {
        seed,
        scheme,
        dims,
        nodes,
        settle_time: 120.0,
        heartbeat_period,
        fail_timeout,
        fault_duration,
        recovery_periods: 20.0,
        graceful_fraction,
        churn_gap,
        class_faults,
        partitions,
        degrades,
        events,
        // The fuzzer grammar stays macro-free: macros are the scenario
        // library's vocabulary, and keeping them out of `generate`
        // leaves every historical seed's schedule untouched.
        macros: Vec::new(),
        detector,
        replication,
        sched_crash_interval,
        // Like macros, overload arming stays out of the fuzzer grammar
        // so historical seeds keep their schedules; the scenario
        // library is what writes it.
        overload: None,
        expect_digest: None,
    };
    debug_assert!(schedule.validate().is_ok(), "generator escaped its budget");
    schedule
}

// ---------------------------------------------------------------------------
// Trace format
// ---------------------------------------------------------------------------

/// A parse failure in a trace file, with the 1-indexed offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-indexed line number of the offending record (0 for whole-file
    /// problems such as a missing `schedule` record).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn class_label(class: MsgClass) -> &'static str {
    class.label()
}

fn class_from_label(label: &str) -> Option<MsgClass> {
    MsgClass::ALL.iter().copied().find(|c| c.label() == label)
}

impl FaultSchedule {
    /// Serializes the schedule as a self-contained replayable trace.
    ///
    /// The format is line-oriented text: one record per line, each a
    /// record kind followed by `key=value` fields. `#` starts a
    /// comment. `f64` values use Rust's shortest round-trip `Display`,
    /// so [`FaultSchedule::parse`] recovers them bit for bit.
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        out.push_str("# pgrid fault-schedule trace v1\n");
        let _ = writeln!(
            out,
            "schedule seed={} scheme={} dims={} nodes={}",
            self.seed, self.scheme, self.dims, self.nodes
        );
        let _ = writeln!(
            out,
            "phase settle={} period={} timeout={} fault={} recovery={} graceful={}",
            self.settle_time,
            self.heartbeat_period,
            self.fail_timeout,
            self.fault_duration,
            self.recovery_periods,
            self.graceful_fraction
        );
        if let Some(gap) = self.churn_gap {
            let _ = writeln!(out, "churn gap={gap}");
        }
        for &(class, f) in &self.class_faults {
            let _ = writeln!(
                out,
                "classfault class={} drop={} duplicate={} delay={} jitter={}",
                class_label(class),
                f.drop,
                f.duplicate,
                f.delay,
                f.jitter
            );
        }
        for p in &self.partitions {
            let _ = writeln!(
                out,
                "partition fraction={} from={} until={}",
                p.fraction, p.from, p.until
            );
        }
        for d in &self.degrades {
            let _ = writeln!(
                out,
                "degrade pairs={} drop={} jitter={} from={} until={}",
                d.pairs, d.drop, d.jitter, d.from, d.until
            );
        }
        if let Some(mode) = &self.detector {
            let _ = writeln!(out, "detector mode={mode}");
        }
        if let Some(mode) = &self.replication {
            let _ = writeln!(out, "replication mode={mode}");
        }
        for m in &self.macros {
            match *m {
                ScheduleMacro::Wave {
                    period,
                    amplitude,
                    cycles,
                    from,
                } => {
                    let _ = writeln!(
                        out,
                        "wave period={period} amplitude={amplitude} cycles={cycles} from={from}"
                    );
                }
                ScheduleMacro::Spike {
                    at,
                    joins,
                    rate,
                    duration,
                } => {
                    let _ = writeln!(
                        out,
                        "spike at={at} joins={joins} rate={rate} duration={duration}"
                    );
                }
                ScheduleMacro::RackStorm {
                    at,
                    racks,
                    size,
                    gap,
                } => {
                    let _ = writeln!(out, "rackstorm at={at} racks={racks} size={size} gap={gap}");
                }
                ScheduleMacro::Straggler {
                    pairs,
                    drop,
                    jitter,
                    freezes,
                    freeze_secs,
                    from,
                    until,
                } => {
                    let _ = writeln!(
                        out,
                        "straggler pairs={pairs} drop={drop} jitter={jitter} freezes={freezes} \
                         freeze_secs={freeze_secs} from={from} until={until}"
                    );
                }
                ScheduleMacro::GrayFail {
                    pairs,
                    drop,
                    delay,
                    from,
                    until,
                } => {
                    let _ = writeln!(
                        out,
                        "grayfail pairs={pairs} drop={drop} delay={delay} from={from} until={until}"
                    );
                }
            }
        }
        for e in &self.events {
            match e.fault {
                NodeFault::Crash { count } => {
                    let _ = writeln!(out, "event at={} kind=crash count={count}", e.at);
                }
                NodeFault::Rejoin { count } => {
                    let _ = writeln!(out, "event at={} kind=rejoin count={count}", e.at);
                }
                NodeFault::Freeze { count, duration } => {
                    let _ = writeln!(
                        out,
                        "event at={} kind=freeze count={count} duration={duration}",
                        e.at
                    );
                }
            }
        }
        if let Some(iv) = self.sched_crash_interval {
            let _ = writeln!(out, "sched crash_interval={iv}");
        }
        if let Some(o) = &self.overload {
            let _ = writeln!(
                out,
                "overload slots={} wait={} burst={} refill={}",
                o.slots, o.wait, o.burst, o.refill
            );
        }
        if let Some(d) = self.expect_digest {
            let _ = writeln!(out, "expect digest={d:#018x}");
        }
        out
    }

    /// Parses a trace produced by [`FaultSchedule::to_text`] (or
    /// written by hand), validating it against the executor's
    /// preconditions.
    pub fn parse(text: &str) -> Result<FaultSchedule, TraceParseError> {
        let err = |line: usize, message: String| TraceParseError { line, message };
        let mut schedule: Option<FaultSchedule> = None;
        let mut saw_phase = false;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let kind = tokens.next().expect("non-empty line has a token");
            let mut fields = Vec::new();
            for tok in tokens {
                let (k, v) = tok
                    .split_once('=')
                    .ok_or_else(|| err(line_no, format!("expected key=value, got `{tok}`")))?;
                fields.push((k, v));
            }
            let get = |key: &str| -> Result<&str, TraceParseError> {
                fields
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| err(line_no, format!("`{kind}` record is missing `{key}=`")))
            };
            let get_f64 = |key: &str| -> Result<f64, TraceParseError> {
                get(key)?
                    .parse::<f64>()
                    .map_err(|_| err(line_no, format!("`{key}` is not a number")))
            };
            let get_usize = |key: &str| -> Result<usize, TraceParseError> {
                get(key)?
                    .parse::<usize>()
                    .map_err(|_| err(line_no, format!("`{key}` is not an integer")))
            };

            if kind == "schedule" {
                if schedule.is_some() {
                    return Err(err(line_no, "duplicate `schedule` record".into()));
                }
                schedule = Some(FaultSchedule {
                    seed: get("seed")?
                        .parse::<u64>()
                        .map_err(|_| err(line_no, "`seed` is not an integer".into()))?,
                    scheme: get("scheme")?.to_string(),
                    dims: get_usize("dims")?,
                    nodes: get_usize("nodes")?,
                    settle_time: 0.0,
                    heartbeat_period: 0.0,
                    fail_timeout: 0.0,
                    fault_duration: 0.0,
                    recovery_periods: 0.0,
                    graceful_fraction: 0.0,
                    churn_gap: None,
                    class_faults: Vec::new(),
                    partitions: Vec::new(),
                    degrades: Vec::new(),
                    events: Vec::new(),
                    macros: Vec::new(),
                    detector: None,
                    replication: None,
                    sched_crash_interval: None,
                    overload: None,
                    expect_digest: None,
                });
                continue;
            }
            let sched = schedule
                .as_mut()
                .ok_or_else(|| err(line_no, "`schedule` record must come first".into()))?;
            match kind {
                "phase" => {
                    sched.settle_time = get_f64("settle")?;
                    sched.heartbeat_period = get_f64("period")?;
                    sched.fail_timeout = get_f64("timeout")?;
                    sched.fault_duration = get_f64("fault")?;
                    sched.recovery_periods = get_f64("recovery")?;
                    sched.graceful_fraction = get_f64("graceful")?;
                    saw_phase = true;
                }
                "churn" => sched.churn_gap = Some(get_f64("gap")?),
                "classfault" => {
                    let label = get("class")?;
                    let class = class_from_label(label)
                        .ok_or_else(|| err(line_no, format!("unknown message class `{label}`")))?;
                    sched.class_faults.push((
                        class,
                        ClassFaults {
                            drop: get_f64("drop")?,
                            duplicate: get_f64("duplicate")?,
                            delay: get_f64("delay")?,
                            jitter: get_f64("jitter")?,
                        },
                    ));
                }
                "partition" => sched.partitions.push(PartitionWindow {
                    fraction: get_f64("fraction")?,
                    from: get_f64("from")?,
                    until: get_f64("until")?,
                }),
                "degrade" => sched.degrades.push(DegradeWindow {
                    pairs: get_usize("pairs")?,
                    drop: get_f64("drop")?,
                    jitter: get_f64("jitter")?,
                    from: get_f64("from")?,
                    until: get_f64("until")?,
                }),
                "detector" => sched.detector = Some(get("mode")?.to_string()),
                "replication" => sched.replication = Some(get("mode")?.to_string()),
                "wave" => sched.macros.push(ScheduleMacro::Wave {
                    period: get_f64("period")?,
                    amplitude: get_usize("amplitude")?,
                    cycles: get_usize("cycles")?,
                    from: get_f64("from")?,
                }),
                "spike" => sched.macros.push(ScheduleMacro::Spike {
                    at: get_f64("at")?,
                    joins: get_usize("joins")?,
                    rate: get_f64("rate")?,
                    duration: get_f64("duration")?,
                }),
                "rackstorm" => sched.macros.push(ScheduleMacro::RackStorm {
                    at: get_f64("at")?,
                    racks: get_usize("racks")?,
                    size: get_usize("size")?,
                    gap: get_f64("gap")?,
                }),
                "straggler" => sched.macros.push(ScheduleMacro::Straggler {
                    pairs: get_usize("pairs")?,
                    drop: get_f64("drop")?,
                    jitter: get_f64("jitter")?,
                    freezes: get_usize("freezes")?,
                    freeze_secs: get_f64("freeze_secs")?,
                    from: get_f64("from")?,
                    until: get_f64("until")?,
                }),
                "grayfail" => sched.macros.push(ScheduleMacro::GrayFail {
                    pairs: get_usize("pairs")?,
                    drop: get_f64("drop")?,
                    delay: get_f64("delay")?,
                    from: get_f64("from")?,
                    until: get_f64("until")?,
                }),
                "event" => {
                    let at = get_f64("at")?;
                    let fault = match get("kind")? {
                        "crash" => NodeFault::Crash {
                            count: get_usize("count")?,
                        },
                        "rejoin" => NodeFault::Rejoin {
                            count: get_usize("count")?,
                        },
                        "freeze" => NodeFault::Freeze {
                            count: get_usize("count")?,
                            duration: get_f64("duration")?,
                        },
                        other => return Err(err(line_no, format!("unknown event kind `{other}`"))),
                    };
                    sched.events.push(FaultEvent { at, fault });
                }
                "sched" => sched.sched_crash_interval = Some(get_f64("crash_interval")?),
                "overload" => {
                    sched.overload = Some(OverloadRecord {
                        slots: get_usize("slots")?,
                        wait: get_f64("wait")?,
                        burst: get("burst")?
                            .parse::<u32>()
                            .map_err(|_| err(line_no, "`burst` is not an integer".into()))?,
                        refill: get_f64("refill")?,
                    });
                }
                "expect" => {
                    let raw = get("digest")?;
                    let hex = raw.strip_prefix("0x").unwrap_or(raw);
                    sched.expect_digest = Some(
                        u64::from_str_radix(hex, 16)
                            .map_err(|_| err(line_no, "`digest` is not a hex integer".into()))?,
                    );
                }
                other => return Err(err(line_no, format!("unknown record kind `{other}`"))),
            }
        }
        let mut sched = schedule.ok_or_else(|| err(0, "trace has no `schedule` record".into()))?;
        if !saw_phase {
            return Err(err(0, "trace has no `phase` record".into()));
        }
        sched.events.sort_by(|a, b| a.at.total_cmp(&b.at));
        sched.validate().map_err(|message| err(0, message))?;
        Ok(sched)
    }
}

// ---------------------------------------------------------------------------
// Delta-debugging shrinker
// ---------------------------------------------------------------------------

/// Result of a [`shrink`] run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized schedule (still failing under the caller's test).
    pub schedule: FaultSchedule,
    /// Number of replay probes spent.
    pub probes: usize,
}

/// Minimizes a failing schedule with complement-removal delta
/// debugging (ddmin) over its removable elements — node-fault events,
/// partition windows, per-class fault entries, the churn toggle, the
/// scheduler-phase toggle, link-degrade windows, and the detector
/// toggle — followed by a greedy count-reduction pass on the surviving
/// events.
///
/// `still_fails` must return `true` when the candidate schedule still
/// exhibits the failure. The original schedule is assumed failing. The
/// search spends at most `max_probes` calls to `still_fails`; the
/// result is 1-minimal when the budget allows, near-minimal otherwise.
pub fn shrink<F>(origin: &FaultSchedule, max_probes: usize, mut still_fails: F) -> ShrinkOutcome
where
    F: FnMut(&FaultSchedule) -> bool,
{
    let mut current = origin.clone();
    current.expect_digest = None;
    let mut probes = 0usize;

    // Phase 1: ddmin over removable elements.
    let mut granularity = 2usize;
    loop {
        let len = current.element_count();
        if len <= 1 || probes >= max_probes {
            break;
        }
        let n = granularity.min(len);
        let mut reduced = false;
        for chunk in 0..n {
            if probes >= max_probes {
                break;
            }
            // Keep the complement of this chunk (element i lives in
            // chunk i*n/len, which partitions 0..len into n runs).
            let keep: Vec<bool> = (0..len).map(|i| i * n / len != chunk).collect();
            if keep.iter().all(|&k| k) || keep.iter().all(|&k| !k) {
                continue;
            }
            let candidate = current.with_elements(&keep);
            probes += 1;
            if still_fails(&candidate) {
                current = candidate;
                granularity = (n - 1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if n >= len {
                break;
            }
            granularity = (n * 2).min(len);
        }
    }

    // Phase 2: greedy count reduction on surviving events. Failure is
    // usually monotone in burst size, so probing a few shrunken counts
    // in ascending order finds a near-minimal burst cheaply.
    for i in 0..current.events.len() {
        let count = match current.events[i].fault {
            NodeFault::Crash { count }
            | NodeFault::Rejoin { count }
            | NodeFault::Freeze { count, .. } => count,
        };
        if count <= 1 {
            continue;
        }
        for candidate_count in [1, count / 4, count / 2] {
            if candidate_count == 0 || candidate_count >= count || probes >= max_probes {
                continue;
            }
            let mut candidate = current.clone();
            match &mut candidate.events[i].fault {
                NodeFault::Crash { count }
                | NodeFault::Rejoin { count }
                | NodeFault::Freeze { count, .. } => *count = candidate_count,
            }
            probes += 1;
            if still_fails(&candidate) {
                current = candidate;
                break;
            }
        }
    }

    ShrinkOutcome {
        schedule: current,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash_at(at: f64, count: usize) -> FaultEvent {
        FaultEvent {
            at,
            fault: NodeFault::Crash { count },
        }
    }

    fn base_schedule() -> FaultSchedule {
        FaultSchedule {
            seed: 7,
            scheme: "adaptive".into(),
            dims: 2,
            nodes: 24,
            settle_time: 120.0,
            heartbeat_period: 60.0,
            fail_timeout: 150.0,
            fault_duration: 600.0,
            recovery_periods: 20.0,
            graceful_fraction: 0.5,
            churn_gap: Some(12.5),
            class_faults: vec![(
                MsgClass::Heartbeat,
                ClassFaults {
                    drop: 0.2,
                    duplicate: 0.1,
                    delay: 1.5,
                    jitter: 0.0,
                },
            )],
            partitions: vec![PartitionWindow {
                fraction: 0.2,
                from: 50.0,
                until: 400.0,
            }],
            degrades: vec![DegradeWindow {
                pairs: 3,
                drop: 0.4,
                jitter: 25.0,
                from: 30.0,
                until: 500.0,
            }],
            events: vec![crash_at(60.0, 8), crash_at(120.0, 2), crash_at(300.0, 5)],
            macros: vec![
                ScheduleMacro::Wave {
                    period: 150.0,
                    amplitude: 3,
                    cycles: 2,
                    from: 10.0,
                },
                ScheduleMacro::GrayFail {
                    pairs: 4,
                    drop: 0.3,
                    delay: 20.0,
                    from: 50.0,
                    until: 550.0,
                },
            ],
            detector: Some("adaptive".into()),
            replication: Some("standby".into()),
            sched_crash_interval: Some(450.0),
            overload: Some(OverloadRecord {
                slots: 4,
                wait: 900.0,
                burst: 3,
                refill: 0.01,
            }),
            expect_digest: Some(0xdead_beef),
        }
    }

    #[test]
    fn generation_is_deterministic_and_in_budget() {
        let budget = ScheduleBudget::default();
        for seed in 0..40 {
            let a = generate(seed, &budget);
            let b = generate(seed, &budget);
            assert_eq!(a, b, "seed {seed} must regenerate identically");
            assert!(a.validate().is_ok(), "seed {seed}: {:?}", a.validate());
            assert!(a.dims >= budget.min_dims && a.dims <= budget.max_dims);
            assert!(a.nodes >= budget.min_nodes && a.nodes <= budget.max_nodes);
            assert!(!a.events.is_empty() && a.events.len() <= budget.max_events);
            assert!(a.partitions.len() <= budget.max_partitions);
            for &(_, f) in &a.class_faults {
                assert!(f.drop < budget.max_drop);
            }
            assert!(a.degrades.len() <= budget.max_degrades);
            for d in &a.degrades {
                assert!(d.pairs >= 1 && d.pairs <= budget.max_degrade_pairs);
                assert!(d.drop < budget.max_degrade_drop);
            }
        }
    }

    #[test]
    fn generation_samples_degrades_and_detectors() {
        let budget = ScheduleBudget::default();
        let schedules: Vec<FaultSchedule> = (0..40).map(|s| generate(s, &budget)).collect();
        assert!(
            schedules.iter().any(|s| !s.degrades.is_empty()),
            "some seed should draw a degrade window"
        );
        assert!(
            schedules
                .iter()
                .any(|s| s.detector.as_deref() == Some("fixed"))
                && schedules
                    .iter()
                    .any(|s| s.detector.as_deref() == Some("adaptive")),
            "both detector modes should appear across seeds"
        );
        assert!(
            schedules.iter().any(|s| s.detector.is_none()),
            "the legacy passive mode should still appear"
        );
        assert!(
            schedules
                .iter()
                .any(|s| s.replication.as_deref() == Some("standby")),
            "some seed should arm warm-standby replication"
        );
        assert!(
            schedules.iter().any(|s| s.replication.is_none()),
            "unreplicated schedules should still appear"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let budget = ScheduleBudget::default();
        assert_ne!(generate(1, &budget), generate(2, &budget));
    }

    #[test]
    fn trace_round_trips_bit_identically() {
        let budget = ScheduleBudget::default();
        for seed in 0..25 {
            let mut s = generate(seed, &budget);
            s.expect_digest = Some(seed.wrapping_mul(0x9e37_79b9));
            let text = s.to_text();
            let parsed = FaultSchedule::parse(&text).expect("round trip parses");
            assert_eq!(parsed, s, "seed {seed} round trip:\n{text}");
        }
        let hand = base_schedule();
        assert_eq!(
            FaultSchedule::parse(&hand.to_text()).unwrap(),
            hand,
            "hand-built schedule round trips"
        );
    }

    #[test]
    fn parse_reports_the_offending_line() {
        let mut text = base_schedule().to_text();
        text.push_str("event at=10 kind=warp count=1\n");
        let bad_line = text.lines().count();
        let e = FaultSchedule::parse(&text).unwrap_err();
        assert_eq!(e.line, bad_line);
        assert!(e.message.contains("warp"), "{e}");

        let e = FaultSchedule::parse("phase settle=1\n").unwrap_err();
        assert_eq!(e.line, 1, "records before `schedule` are rejected: {e}");

        let e = FaultSchedule::parse("schedule seed=1 scheme=x dims=2 nodes=24\n").unwrap_err();
        assert!(e.message.contains("phase"), "{e}");
    }

    #[test]
    fn parse_rejects_executor_precondition_violations() {
        let mut s = base_schedule();
        s.partitions[0].until = s.fault_duration + 1.0;
        let e = FaultSchedule::parse(&s.to_text()).unwrap_err();
        assert!(e.message.contains("partition window"), "{e}");

        let mut s = base_schedule();
        s.degrades[0].until = s.fault_duration + 1.0;
        let e = FaultSchedule::parse(&s.to_text()).unwrap_err();
        assert!(e.message.contains("degrade window"), "{e}");

        let mut s = base_schedule();
        s.detector = Some("psychic".into());
        let e = FaultSchedule::parse(&s.to_text()).unwrap_err();
        assert!(e.message.contains("detector mode"), "{e}");

        let mut s = base_schedule();
        s.replication = Some("hot".into());
        let e = FaultSchedule::parse(&s.to_text()).unwrap_err();
        assert!(e.message.contains("replication mode"), "{e}");
    }

    #[test]
    fn shrink_finds_the_single_guilty_event() {
        let origin = base_schedule();
        // Failure := schedule still contains the crash burst at t=120.
        let outcome = shrink(&origin, 256, |s| s.events.iter().any(|e| e.at == 120.0));
        assert_eq!(outcome.schedule.events.len(), 1);
        assert_eq!(outcome.schedule.events[0].at, 120.0);
        assert!(outcome.schedule.partitions.is_empty());
        assert!(outcome.schedule.class_faults.is_empty());
        assert!(outcome.schedule.degrades.is_empty());
        assert!(outcome.schedule.detector.is_none());
        assert!(outcome.schedule.replication.is_none());
        assert!(outcome.schedule.churn_gap.is_none());
        assert!(outcome.schedule.sched_crash_interval.is_none());
        assert!(outcome.schedule.macros.is_empty());
        assert!(outcome.schedule.expect_digest.is_none());
        assert!(outcome.probes <= 256);
    }

    #[test]
    fn shrink_reduces_burst_counts() {
        let origin = base_schedule();
        // Failure := some crash burst of at least 2 victims survives.
        let outcome = shrink(&origin, 256, |s| {
            s.events
                .iter()
                .any(|e| matches!(e.fault, NodeFault::Crash { count } if count >= 2))
        });
        assert_eq!(outcome.schedule.events.len(), 1);
        assert!(
            matches!(
                outcome.schedule.events[0].fault,
                NodeFault::Crash { count: 2 }
            ),
            "burst shrinks to the minimal failing count: {:?}",
            outcome.schedule.events
        );
    }

    #[test]
    fn shrink_respects_the_probe_budget() {
        let origin = base_schedule();
        let mut calls = 0usize;
        let outcome = shrink(&origin, 3, |_| {
            calls += 1;
            false
        });
        assert!(calls <= 3);
        assert_eq!(outcome.probes, calls);
        // Nothing shrank, but the schedule is intact.
        assert_eq!(outcome.schedule.events.len(), origin.events.len());
    }

    fn all_macro_kinds() -> Vec<ScheduleMacro> {
        vec![
            ScheduleMacro::Wave {
                period: 120.0,
                amplitude: 4,
                cycles: 3,
                from: 20.0,
            },
            ScheduleMacro::Spike {
                at: 60.0,
                joins: 10,
                rate: 2.5,
                duration: 200.0,
            },
            ScheduleMacro::RackStorm {
                at: 30.0,
                racks: 3,
                size: 4,
                gap: 100.0,
            },
            ScheduleMacro::Straggler {
                pairs: 4,
                drop: 0.35,
                jitter: 25.0,
                freezes: 2,
                freeze_secs: 120.0,
                from: 40.0,
                until: 500.0,
            },
            ScheduleMacro::GrayFail {
                pairs: 5,
                drop: 0.25,
                delay: 35.0,
                from: 50.0,
                until: 550.0,
            },
        ]
    }

    #[test]
    fn macro_records_round_trip_bit_identically() {
        let mut s = base_schedule();
        s.macros = all_macro_kinds();
        let text = s.to_text();
        let parsed = FaultSchedule::parse(&text).expect("macro trace parses");
        assert_eq!(parsed, s, "all five macro kinds round trip:\n{text}");
    }

    #[test]
    fn validate_rejects_macro_windows_past_the_horizon() {
        let mut s = base_schedule();
        s.macros = vec![ScheduleMacro::Wave {
            period: 200.0,
            amplitude: 2,
            cycles: 4, // 10 + 800 > 600
            from: 10.0,
        }];
        let e = FaultSchedule::parse(&s.to_text()).unwrap_err();
        assert!(e.message.contains("wave window"), "{e}");

        let mut s = base_schedule();
        s.macros = vec![ScheduleMacro::RackStorm {
            at: 500.0,
            racks: 2,
            size: 3,
            gap: 100.0, // 500 + 200 > 600
        }];
        let e = FaultSchedule::parse(&s.to_text()).unwrap_err();
        assert!(e.message.contains("rackstorm window"), "{e}");

        let mut s = base_schedule();
        s.macros = vec![ScheduleMacro::Spike {
            at: 500.0,
            joins: 8,
            rate: 2.0,
            duration: 200.0, // 500 + 200 > 600
        }];
        let e = FaultSchedule::parse(&s.to_text()).unwrap_err();
        assert!(e.message.contains("spike window"), "{e}");
    }

    #[test]
    fn validate_rejects_zero_expansion_macros() {
        let mut s = base_schedule();
        s.macros = vec![ScheduleMacro::Wave {
            period: 100.0,
            amplitude: 2,
            cycles: 0,
            from: 10.0,
        }];
        let e = s.validate().unwrap_err();
        assert!(e.contains("zero events"), "{e}");

        let mut s = base_schedule();
        s.macros = vec![ScheduleMacro::RackStorm {
            at: 10.0,
            racks: 0,
            size: 3,
            gap: 50.0,
        }];
        let e = s.validate().unwrap_err();
        assert!(e.contains("zero events"), "{e}");
    }

    #[test]
    fn expansion_is_deterministic_and_macro_free() {
        let mut s = base_schedule();
        s.macros = all_macro_kinds();
        s.fault_duration = 600.0;
        s.validate().expect("macro schedule valid");
        let a = s.expand();
        let b = s.expand();
        assert_eq!(a, b, "expansion must be deterministic");
        assert!(a.macros.is_empty());
        assert!(a.validate().is_ok(), "{:?}", a.validate());
        let expected: usize = s.macros.iter().map(|m| m.expansion_count()).sum();
        let grown = (a.events.len() - s.events.len()) + (a.degrades.len() - s.degrades.len());
        assert_eq!(
            grown, expected,
            "every macro lowers to its advertised count"
        );
        // Events stay sorted for the executor's pop-earliest loop.
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn expansion_is_the_identity_without_macros() {
        let s = generate(9, &ScheduleBudget::default());
        assert!(s.macros.is_empty());
        assert_eq!(s.expand(), s);
    }

    #[test]
    fn seeds_perturb_expansion_times_but_never_structure() {
        let mut a = base_schedule();
        a.events.clear();
        a.degrades.clear();
        a.macros = all_macro_kinds();
        let mut b = a.clone();
        b.seed = a.seed + 1;
        let (ea, eb) = (a.expand(), b.expand());
        assert_eq!(ea.events.len(), eb.events.len());
        assert_eq!(ea.degrades.len(), eb.degrades.len());
        let kinds = |s: &FaultSchedule| {
            let mut v: Vec<u8> = s
                .events
                .iter()
                .map(|e| match e.fault {
                    NodeFault::Crash { .. } => 0u8,
                    NodeFault::Rejoin { .. } => 1,
                    NodeFault::Freeze { .. } => 2,
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(kinds(&ea), kinds(&eb), "event kinds are seed-invariant");
        assert_ne!(
            ea.events, eb.events,
            "different seeds must perturb at least one expansion time"
        );
    }

    #[test]
    fn arrival_windows_surface_spike_rates() {
        let mut s = base_schedule();
        s.macros = all_macro_kinds();
        assert_eq!(s.arrival_windows(), vec![(60.0, 260.0, 2.5)]);
        s.macros.clear();
        assert!(s.arrival_windows().is_empty());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        let mut h = Fnv::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
