//! Deterministic fault injection: message-level network faults and
//! node-level fault schedules.
//!
//! Higher layers (the CAN protocol simulator, the scheduler) route
//! every message-delivery decision through a [`NetworkModel`] and every
//! scripted outage through a [`FaultPlan`]. Both are seeded, so a
//! `(seed, plan)` pair replays bit-for-bit — chaos runs are ordinary
//! deterministic simulations that happen to be hostile.
//!
//! Determinism contract: an *ideal* model (no loss, no duplication, no
//! latency, no partitions) consumes **zero** random draws and always
//! returns "deliver one copy now". With faults disabled the fault layer
//! is therefore invisible to existing trajectories — golden digests stay
//! bit-identical.

use crate::event::SimTime;
use crate::rng::SimRng;

/// Coarse message taxonomy the network model keys its per-class fault
/// rates on. Mirrors the wire-level message kinds one layer up without
/// depending on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Periodic maintenance traffic: full heartbeats, keepalives, zone
    /// updates, and targeted repair announcements.
    Heartbeat,
    /// Adaptive on-demand full-update request/response exchanges.
    FullUpdate,
    /// Join request/reply exchanges.
    Join,
    /// Departure hand-off transfers.
    Handoff,
}

impl MsgClass {
    /// Every class, in a fixed order (indexing and iteration).
    pub const ALL: [MsgClass; 4] = [
        MsgClass::Heartbeat,
        MsgClass::FullUpdate,
        MsgClass::Join,
        MsgClass::Handoff,
    ];

    /// Stable index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MsgClass::Heartbeat => 0,
            MsgClass::FullUpdate => 1,
            MsgClass::Join => 2,
            MsgClass::Handoff => 3,
        }
    }

    /// Human-readable label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Heartbeat => "heartbeat",
            MsgClass::FullUpdate => "full-update",
            MsgClass::Join => "join",
            MsgClass::Handoff => "handoff",
        }
    }
}

/// Fault rates applied to one message class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassFaults {
    /// Probability a transmission is lost in flight.
    pub drop: f64,
    /// Probability a delivered transmission arrives twice.
    pub duplicate: f64,
    /// Fixed propagation delay added to every delivery, in seconds.
    pub delay: f64,
    /// Uniform jitter in `[0, jitter)` seconds added on top of `delay`.
    pub jitter: f64,
}

impl ClassFaults {
    /// No faults: deliver exactly one copy immediately.
    pub const IDEAL: ClassFaults = ClassFaults {
        drop: 0.0,
        duplicate: 0.0,
        delay: 0.0,
        jitter: 0.0,
    };

    /// Whether this class never consults the RNG or the clock.
    #[inline]
    pub fn is_ideal(&self) -> bool {
        *self == ClassFaults::IDEAL
    }

    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.drop),
            "drop probability must be in [0, 1), got {}",
            self.drop
        );
        assert!(
            (0.0..=1.0).contains(&self.duplicate),
            "duplicate probability must be in [0, 1], got {}",
            self.duplicate
        );
        assert!(
            self.delay >= 0.0 && self.delay.is_finite(),
            "delay must be finite and non-negative, got {}",
            self.delay
        );
        assert!(
            self.jitter >= 0.0 && self.jitter.is_finite(),
            "jitter must be finite and non-negative, got {}",
            self.jitter
        );
    }
}

/// A scheduled bidirectional partition: while active, traffic between
/// group `a` and group `b` is severed in both directions. An empty `b`
/// means "everyone not in `a`" (the classic island partition).
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    a: Vec<u32>,
    b: Vec<u32>,
    from: SimTime,
    until: SimTime,
}

impl Partition {
    /// A partition between two explicit groups over `[from, until)`.
    pub fn split(mut a: Vec<u32>, mut b: Vec<u32>, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "partition window must be non-empty");
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        Partition { a, b, from, until }
    }

    /// Isolates `group` from the rest of the network over `[from, until)`.
    pub fn isolate(group: Vec<u32>, from: SimTime, until: SimTime) -> Self {
        Partition::split(group, Vec::new(), from, until)
    }

    /// Window start, in simulation seconds.
    #[inline]
    pub fn from(&self) -> SimTime {
        self.from
    }

    /// Window end (exclusive), in simulation seconds.
    #[inline]
    pub fn until(&self) -> SimTime {
        self.until
    }

    /// Whether a message from `x` to `y` at time `now` crosses the cut.
    #[inline]
    pub fn severs(&self, now: SimTime, x: u32, y: u32) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        let in_a_x = self.a.binary_search(&x).is_ok();
        let in_a_y = self.a.binary_search(&y).is_ok();
        if self.b.is_empty() {
            // Island: cut iff exactly one endpoint is inside the island.
            in_a_x != in_a_y
        } else {
            let in_b_x = self.b.binary_search(&x).is_ok();
            let in_b_y = self.b.binary_search(&y).is_ok();
            (in_a_x && in_b_y) || (in_b_x && in_a_y)
        }
    }
}

/// A scheduled *directed* link degradation: while active, transmissions
/// from a listed source to a listed destination suffer extra loss and
/// jitter on top of whatever the per-class fault rates do. Unlike a
/// [`Partition`] the cut is asymmetric — degrading `a → b` leaves
/// `b → a` untouched — which is exactly the shape that separates an
/// adaptive per-link detector from a fixed-timeout one: the victim's
/// heartbeats straggle while everyone else's arrive on time.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDegrade {
    /// Directed `(from, to)` pairs, sorted for binary search.
    pairs: Vec<(u32, u32)>,
    drop: f64,
    jitter: f64,
    from: SimTime,
    until: SimTime,
}

impl LinkDegrade {
    /// Degrades the listed directed pairs over `[from, until)` with an
    /// extra `drop` probability and uniform `[0, jitter)` delay.
    pub fn new(
        mut pairs: Vec<(u32, u32)>,
        drop: f64,
        jitter: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(from < until, "degrade window must be non-empty");
        assert!(
            (0.0..1.0).contains(&drop),
            "degrade drop must be in [0, 1), got {drop}"
        );
        assert!(
            jitter >= 0.0 && jitter.is_finite(),
            "degrade jitter must be finite and non-negative, got {jitter}"
        );
        pairs.sort_unstable();
        pairs.dedup();
        LinkDegrade {
            pairs,
            drop,
            jitter,
            from,
            until,
        }
    }

    /// Window start, in simulation seconds.
    #[inline]
    pub fn from(&self) -> SimTime {
        self.from
    }

    /// Window end (exclusive), in simulation seconds.
    #[inline]
    pub fn until(&self) -> SimTime {
        self.until
    }

    /// Whether a transmission from `x` to `y` at `now` is degraded.
    #[inline]
    pub fn applies(&self, now: SimTime, x: u32, y: u32) -> bool {
        now >= self.from && now < self.until && self.pairs.binary_search(&(x, y)).is_ok()
    }
}

/// The fate of one transmission: how many copies arrive and after what
/// delay. `copies == 0` means the message was lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Copies that arrive (0 = dropped, 2 = duplicated).
    pub copies: u8,
    /// Seconds of propagation delay (0.0 = deliver inline).
    pub delay: f64,
}

impl Delivery {
    /// The ideal fate: one copy, immediately.
    pub const IMMEDIATE: Delivery = Delivery {
        copies: 1,
        delay: 0.0,
    };

    /// Whether the message was lost entirely.
    #[inline]
    pub fn dropped(&self) -> bool {
        self.copies == 0
    }
}

/// Seeded, replayable network fault model.
///
/// Every message-delivery decision a simulator makes goes through
/// [`NetworkModel::fate`] (datagrams) or
/// [`NetworkModel::reliable_sends`] (acknowledged exchanges that
/// retransmit until delivered). The model owns its own RNG sub-stream,
/// so the *same* seed with the *same* fault configuration replays the
/// same fate sequence regardless of what other randomness the caller
/// consumes.
///
/// ```
/// use pgrid_simcore::fault::{MsgClass, NetworkModel};
/// let mut a = NetworkModel::ideal(7).with_loss(0.5);
/// let mut b = NetworkModel::ideal(7).with_loss(0.5);
/// for i in 0..100 {
///     assert_eq!(
///         a.fate(0.0, 0, i, MsgClass::Heartbeat),
///         b.fate(0.0, 0, i, MsgClass::Heartbeat),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkModel {
    classes: [ClassFaults; 4],
    partitions: Vec<Partition>,
    degrades: Vec<LinkDegrade>,
    /// When set, class fault rates apply only inside `[start, end)`;
    /// outside the window the link is ideal (partitions keep their own
    /// windows). Lets a chaos scenario bracket its fault phase without
    /// reconfiguring rates mid-run.
    window: Option<(SimTime, SimTime)>,
    /// Cached "this plan is inert" flag: true iff no class faults, no
    /// partitions, and no degrades are configured. Recomputed on every
    /// mutation (configuration is rare) so the per-message fast path in
    /// [`NetworkModel::fate`] is a single branch instead of a walk over
    /// the class array and schedule vectors.
    ideal: bool,
    rng: SimRng,
    dropped: [u64; 4],
    duplicated: u64,
    partition_drops: u64,
    degrade_drops: u64,
}

impl NetworkModel {
    /// A fault-free model. Consumes no randomness until faults are
    /// configured, so it is safe to thread through golden-path runs.
    pub fn ideal(seed: u64) -> Self {
        NetworkModel {
            classes: [ClassFaults::IDEAL; 4],
            partitions: Vec::new(),
            degrades: Vec::new(),
            window: None,
            ideal: true,
            rng: SimRng::seed_from_u64(seed),
            dropped: [0; 4],
            duplicated: 0,
            partition_drops: 0,
            degrade_drops: 0,
        }
    }

    /// Sets the same drop probability on every message class.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.set_loss(p);
        self
    }

    /// Sets the fault rates of one class.
    pub fn with_class(mut self, class: MsgClass, faults: ClassFaults) -> Self {
        self.set_class(class, faults);
        self
    }

    /// Adds a scheduled partition.
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.add_partition(p);
        self
    }

    /// Adds a scheduled directed link degradation.
    pub fn with_degrade(mut self, d: LinkDegrade) -> Self {
        self.add_degrade(d);
        self
    }

    /// Sets the same drop probability on every message class (in-place
    /// variant for reconfiguring mid-run, e.g. when a chaos phase
    /// starts).
    pub fn set_loss(&mut self, p: f64) {
        for class in &mut self.classes {
            class.drop = p;
            class.validate();
        }
        self.recompute_ideal();
    }

    /// Sets the fault rates of one class (in-place).
    pub fn set_class(&mut self, class: MsgClass, faults: ClassFaults) {
        faults.validate();
        self.classes[class.index()] = faults;
        self.recompute_ideal();
    }

    /// Fault rates currently configured for `class`.
    pub fn class(&self, class: MsgClass) -> ClassFaults {
        self.classes[class.index()]
    }

    /// Adds a scheduled partition (in-place).
    pub fn add_partition(&mut self, p: Partition) {
        self.partitions.push(p);
        self.ideal = false;
    }

    /// Adds a scheduled directed link degradation (in-place).
    pub fn add_degrade(&mut self, d: LinkDegrade) {
        self.degrades.push(d);
        self.ideal = false;
    }

    /// Restricts class fault rates to `[start, end)`.
    pub fn set_window(&mut self, start: SimTime, end: SimTime) {
        assert!(start < end, "fault window must be non-empty");
        self.window = Some((start, end));
    }

    /// Whether the model can never perturb a message: no class faults
    /// configured and no partitions or degrades scheduled. O(1) — the
    /// flag is maintained by the configuration mutators, so callers may
    /// consult it per message (or per round) for free.
    #[inline]
    pub fn is_ideal(&self) -> bool {
        self.ideal
    }

    fn recompute_ideal(&mut self) {
        self.ideal = self.partitions.is_empty()
            && self.degrades.is_empty()
            && self.classes.iter().all(ClassFaults::is_ideal);
    }

    #[inline]
    fn faults_active(&self, now: SimTime) -> bool {
        match self.window {
            Some((start, end)) => now >= start && now < end,
            None => true,
        }
    }

    #[inline]
    fn severed(&self, now: SimTime, from: u32, to: u32) -> bool {
        self.partitions.iter().any(|p| p.severs(now, from, to))
    }

    /// Combined `(drop, jitter)` of every degrade window covering the
    /// `from → to` link at `now`. Overlapping windows compose as
    /// independent losses; jitters add.
    #[inline]
    fn degradation(&self, now: SimTime, from: u32, to: u32) -> (f64, f64) {
        let mut drop = 0.0f64;
        let mut jitter = 0.0f64;
        for d in &self.degrades {
            if d.applies(now, from, to) {
                drop = 1.0 - (1.0 - drop) * (1.0 - d.drop);
                jitter += d.jitter;
            }
        }
        (drop, jitter)
    }

    /// Decides the fate of one datagram transmission from `from` to
    /// `to` at time `now`. Consults the RNG only for fault dimensions
    /// whose rate is non-zero, so an ideal model (or an idle fault
    /// window) leaves the random stream untouched.
    pub fn fate(&mut self, now: SimTime, from: u32, to: u32, class: MsgClass) -> Delivery {
        // Inert plan: nothing below can fire (no partitions or degrades
        // to check, every class ideal), so skip straight to the answer
        // the slow path would compute. The slow path touches neither
        // the RNG nor any counter in this configuration, so the early
        // exit is bit-identical — `ideal_model_consumes_no_rng` pins it.
        if self.ideal {
            return Delivery::IMMEDIATE;
        }
        if !self.partitions.is_empty() && self.severed(now, from, to) {
            self.partition_drops += 1;
            self.dropped[class.index()] += 1;
            return Delivery {
                copies: 0,
                delay: 0.0,
            };
        }
        let (deg_drop, deg_jitter) = if self.degrades.is_empty() {
            (0.0, 0.0)
        } else {
            self.degradation(now, from, to)
        };
        if deg_drop > 0.0 && self.rng.chance(deg_drop) {
            self.degrade_drops += 1;
            self.dropped[class.index()] += 1;
            return Delivery {
                copies: 0,
                delay: 0.0,
            };
        }
        let f = self.classes[class.index()];
        let class_active = !f.is_ideal() && self.faults_active(now);
        if !class_active && deg_jitter == 0.0 {
            return Delivery::IMMEDIATE;
        }
        let mut copies = 1u8;
        let mut delay = 0.0;
        if class_active {
            if f.drop > 0.0 && self.rng.chance(f.drop) {
                self.dropped[class.index()] += 1;
                return Delivery {
                    copies: 0,
                    delay: 0.0,
                };
            }
            if f.duplicate > 0.0 && self.rng.chance(f.duplicate) {
                copies = 2;
                self.duplicated += 1;
            }
            delay = f.delay;
            if f.jitter > 0.0 {
                delay += self.rng.unit() * f.jitter;
            }
        }
        if deg_jitter > 0.0 {
            delay += self.rng.unit() * deg_jitter;
        }
        Delivery { copies, delay }
    }

    /// Number of transmissions an *acknowledged* message needs before
    /// one copy gets through (≥ 1): models join/hand-off exchanges as
    /// reliable-with-retry. Each failed transmission counts as a
    /// dropped message of `class`. A severing partition makes every
    /// attempt fail, so the count saturates at `cap` — callers treat
    /// that as "delivered once the partition heals" and still charge
    /// `cap` transmissions.
    pub fn reliable_sends(
        &mut self,
        now: SimTime,
        from: u32,
        to: u32,
        class: MsgClass,
        cap: u32,
    ) -> u32 {
        assert!(cap >= 1);
        if self.ideal {
            return 1;
        }
        if !self.partitions.is_empty() && self.severed(now, from, to) {
            self.partition_drops += u64::from(cap);
            self.dropped[class.index()] += u64::from(cap - 1);
            return cap;
        }
        let (deg_drop, _) = if self.degrades.is_empty() {
            (0.0, 0.0)
        } else {
            self.degradation(now, from, to)
        };
        let f = self.classes[class.index()];
        let class_drop = if self.faults_active(now) { f.drop } else { 0.0 };
        // Independent loss processes: a transmission survives only if
        // neither the class fault nor the degraded link eats it.
        let drop = 1.0 - (1.0 - class_drop) * (1.0 - deg_drop);
        if drop <= 0.0 {
            return 1;
        }
        let mut sends = 1;
        while sends < cap && self.rng.chance(drop) {
            self.dropped[class.index()] += 1;
            sends += 1;
        }
        sends
    }

    /// Messages dropped so far for one class (loss and partitions).
    pub fn dropped_by_class(&self, class: MsgClass) -> u64 {
        self.dropped[class.index()]
    }

    /// Messages dropped so far across all classes.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Deliveries that arrived as duplicates so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Transmissions severed by a partition so far (subset of the drop
    /// counts).
    pub fn partition_drops(&self) -> u64 {
        self.partition_drops
    }

    /// Transmissions eaten by a degraded link so far (subset of the
    /// drop counts).
    pub fn degrade_drops(&self) -> u64 {
        self.degrade_drops
    }
}

/// A node-level fault event in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFault {
    /// `count` members crash simultaneously (no goodbye, no hand-off).
    Crash {
        /// How many victims, sampled from current members.
        count: usize,
    },
    /// `count` fresh nodes join — crash recovery modeled as rejoin,
    /// per the CAN failure model.
    Rejoin {
        /// How many nodes join.
        count: usize,
    },
    /// `count` members freeze — alive but silent and deaf — for
    /// `duration` seconds, then resume with whatever stale state
    /// they kept.
    Freeze {
        /// How many victims, sampled from current members.
        count: usize,
        /// Freeze length, in seconds.
        duration: f64,
    },
}

/// One scheduled node-level fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires, in seconds relative to the plan origin
    /// (the harness anchors plans to its fault-phase start).
    pub at: SimTime,
    /// What happens.
    pub fault: NodeFault,
}

/// A scripted, seeded schedule of node-level faults.
///
/// The plan carries *what happens when*; victim selection is left to
/// the executing harness, which samples from the then-current member
/// set using [`FaultPlan::seed`] so replays pick the same victims.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Events sorted by [`FaultEvent::at`] (enforced on construction).
    pub events: Vec<FaultEvent>,
    /// Seed for victim sampling during execution.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan with a victim-sampling seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            events: Vec::new(),
            seed,
        }
    }

    /// Appends an event; events may be added in any order.
    pub fn push(&mut self, at: SimTime, fault: NodeFault) {
        assert!(at.is_finite() && at >= 0.0, "fault time must be >= 0");
        self.events.push(FaultEvent { at, fault });
        self.events.sort_by(|a, b| a.at.total_cmp(&b.at));
    }

    /// Builder form of [`FaultPlan::push`].
    pub fn with(mut self, at: SimTime, fault: NodeFault) -> Self {
        self.push(at, fault);
        self
    }

    /// Time of the last scheduled event (0 for an empty plan).
    pub fn horizon(&self) -> SimTime {
        self.events.last().map_or(0.0, |e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_consumes_no_rng() {
        let mut m = NetworkModel::ideal(1);
        let pristine = m.rng.clone();
        for i in 0..1000 {
            assert_eq!(
                m.fate(i as f64, 0, i, MsgClass::Heartbeat),
                Delivery::IMMEDIATE
            );
            assert_eq!(m.reliable_sends(i as f64, 0, i, MsgClass::Join, 16), 1);
        }
        let mut a = pristine;
        let mut b = m.rng.clone();
        assert_eq!(a.next_u64(), b.next_u64(), "RNG must be untouched");
        assert!(m.is_ideal());
        assert_eq!(m.dropped_total(), 0);
    }

    #[test]
    fn ideal_flag_tracks_every_mutation() {
        let mut m = NetworkModel::ideal(21);
        assert!(m.is_ideal());
        m.set_loss(0.2);
        assert!(!m.is_ideal());
        m.set_loss(0.0);
        assert!(m.is_ideal(), "clearing loss restores the fast path");
        m.set_class(
            MsgClass::Join,
            ClassFaults {
                delay: 0.5,
                ..ClassFaults::IDEAL
            },
        );
        assert!(!m.is_ideal());
        m.set_class(MsgClass::Join, ClassFaults::IDEAL);
        assert!(m.is_ideal());
        m.add_partition(Partition::isolate(vec![1], 0.0, 10.0));
        assert!(!m.is_ideal(), "a scheduled partition disables the flag");
        let mut d = NetworkModel::ideal(22);
        d.add_degrade(LinkDegrade::new(vec![(0, 1)], 0.5, 0.0, 0.0, 10.0));
        assert!(!d.is_ideal(), "a scheduled degrade disables the flag");
        // Builder forms route through the same mutators.
        assert!(!NetworkModel::ideal(23).with_loss(0.1).is_ideal());
    }

    #[test]
    fn same_seed_same_fates() {
        let faults = ClassFaults {
            drop: 0.3,
            duplicate: 0.2,
            delay: 0.05,
            jitter: 0.1,
        };
        let mut a = NetworkModel::ideal(9).with_class(MsgClass::Heartbeat, faults);
        let mut b = NetworkModel::ideal(9).with_class(MsgClass::Heartbeat, faults);
        for i in 0..500 {
            assert_eq!(
                a.fate(i as f64, i, i + 1, MsgClass::Heartbeat),
                b.fate(i as f64, i, i + 1, MsgClass::Heartbeat)
            );
        }
        assert_eq!(a.dropped_total(), b.dropped_total());
        assert_eq!(a.duplicated(), b.duplicated());
    }

    #[test]
    fn loss_rate_is_approximately_honored() {
        let mut m = NetworkModel::ideal(2).with_loss(0.25);
        let n = 40_000;
        let dropped = (0..n)
            .filter(|&i| m.fate(0.0, 0, i, MsgClass::Heartbeat).dropped())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "drop rate {rate} should be ~0.25"
        );
        assert_eq!(m.dropped_total(), dropped as u64);
    }

    #[test]
    fn per_class_rates_are_independent() {
        let mut m = NetworkModel::ideal(3).with_class(
            MsgClass::Join,
            ClassFaults {
                drop: 0.5,
                ..ClassFaults::IDEAL
            },
        );
        for i in 0..1000 {
            assert!(!m.fate(0.0, 0, i, MsgClass::Heartbeat).dropped());
        }
        assert_eq!(m.dropped_by_class(MsgClass::Heartbeat), 0);
        let joins_dropped = (0..1000)
            .filter(|&i| m.fate(0.0, 0, i, MsgClass::Join).dropped())
            .count();
        assert!(joins_dropped > 300, "join class should drop ~half");
        assert_eq!(m.dropped_by_class(MsgClass::Join), joins_dropped as u64);
    }

    #[test]
    fn partition_severs_only_across_the_cut_and_only_in_window() {
        let p = Partition::split(vec![0, 1], vec![2, 3], 10.0, 20.0);
        assert!(p.severs(10.0, 0, 2));
        assert!(p.severs(15.0, 3, 1), "cut is bidirectional");
        assert!(!p.severs(15.0, 0, 1), "same side is unaffected");
        assert!(!p.severs(15.0, 2, 3), "same side is unaffected");
        assert!(!p.severs(9.9, 0, 2), "before the window");
        assert!(!p.severs(20.0, 0, 2), "window end is exclusive");
        // Node outside both groups is unaffected by an explicit split.
        assert!(!p.severs(15.0, 0, 7));
        assert!(!p.severs(15.0, 7, 2));
    }

    #[test]
    fn island_partition_cuts_against_everyone_else() {
        let p = Partition::isolate(vec![4, 5], 0.0, 100.0);
        assert!(p.severs(1.0, 4, 9));
        assert!(p.severs(1.0, 9, 5));
        assert!(!p.severs(1.0, 4, 5), "inside the island");
        assert!(!p.severs(1.0, 8, 9), "outside the island");
    }

    #[test]
    fn partition_drops_are_counted_and_deterministic() {
        let mut m = NetworkModel::ideal(4).with_partition(Partition::isolate(vec![1], 0.0, 50.0));
        assert!(m.fate(10.0, 1, 2, MsgClass::Heartbeat).dropped());
        assert!(m.fate(10.0, 2, 1, MsgClass::Join).dropped());
        assert!(!m.fate(60.0, 1, 2, MsgClass::Heartbeat).dropped(), "healed");
        assert_eq!(m.partition_drops(), 2);
        assert_eq!(m.dropped_total(), 2);
    }

    #[test]
    fn fault_window_gates_class_faults() {
        let mut m = NetworkModel::ideal(5).with_loss(0.9);
        m.set_window(100.0, 200.0);
        for i in 0..200 {
            assert!(
                !m.fate(50.0, 0, i, MsgClass::Heartbeat).dropped(),
                "outside the window the link is ideal"
            );
        }
        let dropped = (0..200)
            .filter(|&i| m.fate(150.0, 0, i, MsgClass::Heartbeat).dropped())
            .count();
        assert!(dropped > 150, "inside the window loss applies");
    }

    #[test]
    fn reliable_sends_retries_until_delivered() {
        let mut m = NetworkModel::ideal(6).with_loss(0.5);
        let total: u32 = (0..2000)
            .map(|i| m.reliable_sends(0.0, 0, i, MsgClass::Join, 64))
            .sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 2.0).abs() < 0.15, "mean sends {mean} should be ~2");
        assert_eq!(m.dropped_by_class(MsgClass::Join), u64::from(total) - 2000);
    }

    #[test]
    fn reliable_sends_saturates_under_partition() {
        let mut m = NetworkModel::ideal(7).with_partition(Partition::isolate(vec![0], 0.0, 10.0));
        assert_eq!(m.reliable_sends(5.0, 0, 3, MsgClass::Handoff, 8), 8);
        assert_eq!(m.reliable_sends(15.0, 0, 3, MsgClass::Handoff, 8), 1);
    }

    #[test]
    fn duplication_delivers_two_copies() {
        let mut m = NetworkModel::ideal(8).with_class(
            MsgClass::Heartbeat,
            ClassFaults {
                duplicate: 1.0,
                ..ClassFaults::IDEAL
            },
        );
        let d = m.fate(0.0, 0, 1, MsgClass::Heartbeat);
        assert_eq!(d.copies, 2);
        assert_eq!(m.duplicated(), 1);
    }

    #[test]
    fn latency_and_jitter_bound_delay() {
        let mut m = NetworkModel::ideal(9).with_class(
            MsgClass::Heartbeat,
            ClassFaults {
                delay: 0.5,
                jitter: 0.25,
                ..ClassFaults::IDEAL
            },
        );
        for i in 0..1000 {
            let d = m.fate(0.0, 0, i, MsgClass::Heartbeat);
            assert_eq!(d.copies, 1);
            assert!(
                (0.5..0.75).contains(&d.delay),
                "delay {} out of range",
                d.delay
            );
        }
    }

    #[test]
    fn degrade_is_directed_and_windowed() {
        let d = LinkDegrade::new(vec![(1, 2)], 0.9, 0.0, 10.0, 20.0);
        assert!(d.applies(15.0, 1, 2));
        assert!(!d.applies(15.0, 2, 1), "reverse direction is untouched");
        assert!(!d.applies(9.9, 1, 2), "before the window");
        assert!(!d.applies(20.0, 1, 2), "window end is exclusive");
        assert!(!d.applies(15.0, 1, 3), "unlisted pair is untouched");
    }

    #[test]
    fn degraded_link_drops_and_jitters_only_the_listed_direction() {
        let mut m = NetworkModel::ideal(12).with_degrade(LinkDegrade::new(
            vec![(0, 1)],
            0.5,
            4.0,
            0.0,
            1000.0,
        ));
        assert!(!m.is_ideal());
        let mut dropped = 0usize;
        let mut jittered = 0usize;
        for i in 0..1000 {
            let fwd = m.fate(i as f64 % 900.0, 0, 1, MsgClass::Heartbeat);
            if fwd.dropped() {
                dropped += 1;
            } else if fwd.delay > 0.0 {
                assert!(fwd.delay < 4.0, "jitter bounded: {}", fwd.delay);
                jittered += 1;
            }
            let rev = m.fate(i as f64 % 900.0, 1, 0, MsgClass::Heartbeat);
            assert_eq!(rev, Delivery::IMMEDIATE, "reverse direction is ideal");
        }
        assert!(
            (350..650).contains(&dropped),
            "forward drop ~0.5, got {dropped}"
        );
        assert!(jittered > 300, "survivors carry jitter, got {jittered}");
        assert_eq!(m.degrade_drops(), dropped as u64);
        assert_eq!(m.dropped_total(), dropped as u64);
    }

    #[test]
    fn degrade_outside_window_consumes_no_rng() {
        let mut m = NetworkModel::ideal(13).with_degrade(LinkDegrade::new(
            vec![(0, 1)],
            0.9,
            5.0,
            100.0,
            200.0,
        ));
        let pristine = m.rng.clone();
        for i in 0..500 {
            assert_eq!(m.fate(50.0, 0, i, MsgClass::Heartbeat), Delivery::IMMEDIATE);
            assert_eq!(m.reliable_sends(50.0, 0, i, MsgClass::Join, 8), 1);
        }
        let mut a = pristine;
        let mut b = m.rng.clone();
        assert_eq!(a.next_u64(), b.next_u64(), "RNG untouched outside window");
    }

    #[test]
    fn degrade_composes_with_class_loss_in_reliable_sends() {
        let mut m = NetworkModel::ideal(14).with_degrade(LinkDegrade::new(
            vec![(0, 1)],
            0.5,
            0.0,
            0.0,
            1e9,
        ));
        let total: u32 = (0..2000)
            .map(|_| m.reliable_sends(1.0, 0, 1, MsgClass::Join, 64))
            .sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 2.0).abs() < 0.15, "mean sends {mean} should be ~2");
        let untouched: u32 = (0..100)
            .map(|_| m.reliable_sends(1.0, 1, 0, MsgClass::Join, 64))
            .sum();
        assert_eq!(untouched, 100, "reverse direction needs one send");
    }

    #[test]
    #[should_panic(expected = "degrade drop")]
    fn full_degrade_loss_is_rejected() {
        let _ = LinkDegrade::new(vec![(0, 1)], 1.0, 0.0, 0.0, 10.0);
    }

    #[test]
    fn fault_plan_sorts_events_and_reports_horizon() {
        let plan = FaultPlan::new(11)
            .with(300.0, NodeFault::Rejoin { count: 5 })
            .with(
                60.0,
                NodeFault::Freeze {
                    count: 2,
                    duration: 30.0,
                },
            )
            .with(0.0, NodeFault::Crash { count: 5 });
        let times: Vec<f64> = plan.events.iter().map(|e| e.at).collect();
        assert_eq!(times, vec![0.0, 60.0, 300.0]);
        assert_eq!(plan.horizon(), 300.0);
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn full_loss_is_rejected() {
        let _ = NetworkModel::ideal(0).with_loss(1.0);
    }
}
