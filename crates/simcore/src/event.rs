//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time, in seconds since simulation start.
pub type SimTime = f64;

/// One scheduled entry: fires at `time`; `seq` breaks ties FIFO.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event,
        // and among equal times the smallest sequence number (FIFO).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue.
///
/// ```
/// use pgrid_simcore::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(5.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.now(), 1.0);
/// ```
///
/// Events fire in non-decreasing time order; events scheduled for the
/// same instant fire in the order they were scheduled. The queue tracks
/// the current simulation time ([`EventQueue::now`]), which advances
/// monotonically as events are popped.
///
/// # Panics
///
/// Scheduling an event with a non-finite time, or earlier than the
/// current time, panics: such bugs must not silently reorder a
/// simulation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
            popped: 0,
        }
    }

    /// Current simulation time: the firing time of the most recently
    /// popped event (0 before any event fires).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events fired so far.
    #[inline]
    pub fn fired(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        assert!(
            time >= self.now,
            "cannot schedule into the past: t={time} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedules `event` to fire `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(self.now + delay, event);
    }

    /// Firing time of the next event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the next event, advancing the simulation clock to its
    /// firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// Drops all pending events (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(2.5, ());
        q.schedule(7.0, ());
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.pop();
        assert_eq!(q.now(), 7.0);
        assert_eq!(q.fired(), 2);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "first");
        q.pop();
        q.schedule_in(5.0, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 15.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(5.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn scheduling_nan_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(4.0, 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(2.0, 2);
        q.schedule(3.0, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }
}
