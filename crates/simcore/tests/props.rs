//! Property-based tests for the event engine and RNG utilities.

use pgrid_simcore::{rng::sub_seed, EventQueue, SimRng};
use proptest::prelude::*;

proptest! {
    /// Pops are time-ordered and FIFO within a timestamp.
    #[test]
    fn queue_is_stable_priority(times in prop::collection::vec(0u32..50, 1..300)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(f64::from(*t), i);
        }
        let mut last: (f64, usize) = (f64::NEG_INFINITY, 0);
        while let Some((t, i)) = q.pop() {
            prop_assert!(t > last.0 || (t == last.0 && i > last.1),
                "order violated: ({t},{i}) after {last:?}");
            last = (t, i);
        }
    }

    /// fired() counts pops exactly; len() tracks outstanding events.
    #[test]
    fn queue_counters_consistent(n in 1usize..100, pops in 0usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(i as f64, i);
        }
        let pops = pops.min(n);
        for _ in 0..pops {
            q.pop();
        }
        prop_assert_eq!(q.fired(), pops as u64);
        prop_assert_eq!(q.len(), n - pops);
    }

    /// Exponential samples are non-negative and roughly scale with the
    /// mean.
    #[test]
    fn exponential_scales(seed in 0u64..10_000, mean in 0.1f64..100.0) {
        let mut r = SimRng::seed_from_u64(seed);
        let n = 2000;
        let s: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let m = s / n as f64;
        prop_assert!(m > 0.0);
        prop_assert!((m / mean) > 0.8 && (m / mean) < 1.25, "mean ratio {}", m / mean);
    }

    /// weighted_choice never selects a zero-weight bucket and always
    /// selects a valid index.
    #[test]
    fn weighted_choice_valid(
        seed in 0u64..10_000,
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..100 {
            let i = r.weighted_choice(&weights);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "picked zero-weight bucket {i}");
        }
    }

    /// sub_seed is deterministic and (practically) collision-free over
    /// small stream sets.
    #[test]
    fn sub_seeds_distinct(master in 0u64..u64::MAX / 2) {
        let seeds: Vec<u64> = (0..32).map(|s| sub_seed(master, s)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 32, "collision among sub-seeds");
        prop_assert_eq!(seeds[0], sub_seed(master, 0));
    }

    /// uniform stays within bounds; below stays within range.
    #[test]
    fn bounded_samplers(seed in 0u64..10_000, lo in -100.0f64..100.0, span in 0.001f64..100.0, n in 1usize..1000) {
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = r.uniform(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
            prop_assert!(r.below(n) < n);
        }
    }

    /// Shuffle is always a permutation.
    #[test]
    fn shuffle_permutes(seed in 0u64..10_000, n in 0usize..200) {
        let mut r = SimRng::seed_from_u64(seed);
        let mut v: Vec<usize> = (0..n).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
