//! Compact identifier newtypes shared across the workspace.

use std::fmt;

/// Identifier of a grid node (peer) in the CAN.
///
/// Node ids are dense small integers assigned by whatever created the
/// node population (the workload generator or the CAN churn driver), so
/// they can index into `Vec`-based side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form for use with `Vec`-based side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// Index form for use with `Vec`-based side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_ordering_follows_numeric_value() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(7), NodeId(7));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<NodeId> = [NodeId(1), NodeId(2), NodeId(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(42).to_string(), "n42");
        assert_eq!(JobId(7).to_string(), "j7");
    }

    #[test]
    fn idx_round_trip() {
        assert_eq!(NodeId(9).idx(), 9);
        assert_eq!(JobId(11).idx(), 11);
    }
}
