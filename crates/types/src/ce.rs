//! Computing elements: the unit of heterogeneity.
//!
//! A computing element (CE) is "a physically separated unit within a
//! grid node \[that\] contains a set of cores which are mainly used for
//! computation, such as a CPU, a GPGPU, or other types of
//! special-purpose computing processors" (paper §I).

use std::fmt;

/// The *type* of a computing element.
///
/// Type `0` is by convention the CPU; types `1..` are distinct GPU (or
/// other accelerator) families. Two CEs of the same type are considered
/// interchangeable for matchmaking: a job requirement names a `CeType`,
/// never a specific device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CeType(pub u8);

impl CeType {
    /// The conventional CPU type.
    pub const CPU: CeType = CeType(0);

    /// The `slot`-th GPU family (0-based): `gpu(0)` is CE type 1.
    #[inline]
    pub const fn gpu(slot: u8) -> CeType {
        CeType(slot + 1)
    }

    /// Whether this is the CPU type.
    #[inline]
    pub const fn is_cpu(self) -> bool {
        self.0 == 0
    }

    /// For GPU types, the 0-based GPU slot; `None` for the CPU.
    #[inline]
    pub const fn gpu_slot(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

impl fmt::Display for CeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cpu() {
            write!(f, "CPU")
        } else {
            write!(f, "GPU{}", self.0 - 1)
        }
    }
}

/// Static capability description of one computing element.
///
/// Clock speeds are expressed relative to a *nominal* clock of `1.0`
/// (paper §V-A: "the simulated job execution time is scaled up or down
/// by the corresponding dominant CE's clock speed, which is specified
/// relative to a nominal clock speed"). Memory is in GB.
#[derive(Debug, Clone, PartialEq)]
pub struct CeSpec {
    /// Which CE family this element belongs to.
    pub ce_type: CeType,
    /// Clock speed relative to the nominal clock (1.0 = nominal).
    pub clock: f64,
    /// Memory dedicated to this CE, in GB (GPU memory for GPUs, RAM for
    /// the CPU).
    pub memory: f64,
    /// Number of cores in the CE.
    pub cores: u32,
    /// Whether the CE is *dedicated*: able to run only one job at a
    /// time (2011-era GPUs), as opposed to a *non-dedicated* CE whose
    /// cores can be shared by several concurrent jobs (CPUs).
    pub dedicated: bool,
}

impl CeSpec {
    /// A non-dedicated CPU element.
    pub fn cpu(clock: f64, memory: f64, cores: u32) -> Self {
        CeSpec {
            ce_type: CeType::CPU,
            clock,
            memory,
            cores,
            dedicated: false,
        }
    }

    /// A dedicated GPU element in the given GPU slot.
    pub fn gpu(slot: u8, clock: f64, memory: f64, cores: u32) -> Self {
        CeSpec {
            ce_type: CeType::gpu(slot),
            clock,
            memory,
            cores,
            dedicated: true,
        }
    }

    /// Validity check used by debug assertions and property tests:
    /// positive clock and memory, at least one core.
    pub fn is_valid(&self) -> bool {
        self.clock > 0.0
            && self.clock.is_finite()
            && self.memory >= 0.0
            && self.memory.is_finite()
            && self.cores >= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_type_is_type_zero() {
        assert_eq!(CeType::CPU, CeType(0));
        assert!(CeType::CPU.is_cpu());
        assert_eq!(CeType::CPU.gpu_slot(), None);
    }

    #[test]
    fn gpu_slots_map_to_types_one_up() {
        assert_eq!(CeType::gpu(0), CeType(1));
        assert_eq!(CeType::gpu(1), CeType(2));
        assert_eq!(CeType::gpu(0).gpu_slot(), Some(0));
        assert_eq!(CeType::gpu(2).gpu_slot(), Some(2));
        assert!(!CeType::gpu(0).is_cpu());
    }

    #[test]
    fn display_names() {
        assert_eq!(CeType::CPU.to_string(), "CPU");
        assert_eq!(CeType::gpu(0).to_string(), "GPU0");
        assert_eq!(CeType::gpu(1).to_string(), "GPU1");
    }

    #[test]
    fn cpu_constructor_is_non_dedicated() {
        let c = CeSpec::cpu(1.5, 8.0, 4);
        assert!(!c.dedicated);
        assert_eq!(c.ce_type, CeType::CPU);
        assert!(c.is_valid());
    }

    #[test]
    fn gpu_constructor_is_dedicated() {
        let g = CeSpec::gpu(0, 1.2, 4.0, 448);
        assert!(g.dedicated);
        assert_eq!(g.ce_type, CeType(1));
        assert!(g.is_valid());
    }

    #[test]
    fn invalid_specs_detected() {
        let mut c = CeSpec::cpu(1.0, 4.0, 2);
        c.clock = 0.0;
        assert!(!c.is_valid());
        c.clock = f64::NAN;
        assert!(!c.is_valid());
        c.clock = 1.0;
        c.cores = 0;
        assert!(!c.is_valid());
        c.cores = 1;
        c.memory = -1.0;
        assert!(!c.is_valid());
    }
}
