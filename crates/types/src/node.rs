//! Grid node capability descriptions.

use crate::ce::{CeSpec, CeType};

/// Static resource capabilities of one grid node.
///
/// A node always has exactly one CPU element and zero or more GPU
/// elements of *distinct* types (paper §V-A: "Each node potentially has
/// a single-/multi-core CPU (1, 2, 4 or 8 cores), and may include up to
/// two different types of GPU"). Disk space is a node-level resource
/// grouped with the CPU's dimensions in the CAN.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// The node's computing elements. Index 0 is the CPU by
    /// construction; see [`NodeSpec::new`].
    ces: Vec<CeSpec>,
    /// Available disk space in GB (node-level resource).
    pub disk: f64,
}

impl NodeSpec {
    /// Builds a node spec from a CPU element, optional GPU elements and
    /// disk space.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is not a CPU-type element, if any entry of
    /// `gpus` is not a GPU-type element, or if two GPUs share a type —
    /// the paper's model attaches at most one CE *per type* to a node.
    pub fn new(cpu: CeSpec, gpus: Vec<CeSpec>, disk: f64) -> Self {
        assert!(cpu.ce_type.is_cpu(), "first CE must be the CPU");
        let mut ces = Vec::with_capacity(1 + gpus.len());
        ces.push(cpu);
        for g in gpus {
            assert!(!g.ce_type.is_cpu(), "GPU list must not contain a CPU");
            assert!(
                !ces.iter().any(|c| c.ce_type == g.ce_type),
                "duplicate CE type {:?} on one node",
                g.ce_type
            );
            ces.push(g);
        }
        NodeSpec { ces, disk }
    }

    /// Convenience constructor for a CPU-only node.
    pub fn cpu_only(clock: f64, memory: f64, cores: u32, disk: f64) -> Self {
        NodeSpec::new(CeSpec::cpu(clock, memory, cores), Vec::new(), disk)
    }

    /// All computing elements; index 0 is always the CPU.
    #[inline]
    pub fn ces(&self) -> &[CeSpec] {
        &self.ces
    }

    /// The node's CPU element.
    #[inline]
    pub fn cpu(&self) -> &CeSpec {
        &self.ces[0]
    }

    /// The element of the given type, if the node has one.
    #[inline]
    pub fn ce(&self, ty: CeType) -> Option<&CeSpec> {
        self.ces.iter().find(|c| c.ce_type == ty)
    }

    /// Whether the node has a CE of the given type.
    #[inline]
    pub fn has_ce(&self, ty: CeType) -> bool {
        self.ce(ty).is_some()
    }

    /// Number of GPU elements attached to the node.
    #[inline]
    pub fn gpu_count(&self) -> usize {
        self.ces.len() - 1
    }

    /// Validity check for debug assertions and property tests.
    pub fn is_valid(&self) -> bool {
        !self.ces.is_empty()
            && self.ces[0].ce_type.is_cpu()
            && self.disk >= 0.0
            && self.disk.is_finite()
            && self.ces.iter().all(CeSpec::is_valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NodeSpec {
        NodeSpec::new(
            CeSpec::cpu(1.5, 8.0, 4),
            vec![CeSpec::gpu(0, 1.2, 4.0, 448), CeSpec::gpu(1, 0.9, 2.0, 240)],
            500.0,
        )
    }

    #[test]
    fn cpu_is_first_element() {
        let n = sample();
        assert!(n.cpu().ce_type.is_cpu());
        assert_eq!(n.ces().len(), 3);
        assert_eq!(n.gpu_count(), 2);
    }

    #[test]
    fn lookup_by_type() {
        let n = sample();
        assert!(n.has_ce(CeType::CPU));
        assert!(n.has_ce(CeType::gpu(0)));
        assert!(n.has_ce(CeType::gpu(1)));
        assert!(!n.has_ce(CeType::gpu(2)));
        assert_eq!(n.ce(CeType::gpu(1)).unwrap().cores, 240);
    }

    #[test]
    fn cpu_only_node() {
        let n = NodeSpec::cpu_only(1.0, 4.0, 2, 100.0);
        assert_eq!(n.gpu_count(), 0);
        assert!(n.is_valid());
    }

    #[test]
    #[should_panic(expected = "first CE must be the CPU")]
    fn rejects_gpu_as_cpu() {
        NodeSpec::new(CeSpec::gpu(0, 1.0, 1.0, 100), vec![], 10.0);
    }

    #[test]
    #[should_panic(expected = "duplicate CE type")]
    fn rejects_duplicate_gpu_types() {
        NodeSpec::new(
            CeSpec::cpu(1.0, 4.0, 2),
            vec![CeSpec::gpu(0, 1.0, 1.0, 100), CeSpec::gpu(0, 2.0, 2.0, 200)],
            10.0,
        );
    }

    #[test]
    #[should_panic(expected = "GPU list must not contain a CPU")]
    fn rejects_cpu_in_gpu_list() {
        NodeSpec::new(
            CeSpec::cpu(1.0, 4.0, 2),
            vec![CeSpec::cpu(1.0, 4.0, 2)],
            10.0,
        );
    }

    #[test]
    fn validity() {
        assert!(sample().is_valid());
        let mut n = sample();
        n.disk = f64::INFINITY;
        assert!(!n.is_valid());
    }
}
