//! Job descriptions: per-CE-type resource requirements, the dominant-CE
//! rule, and runtime scaling.

use crate::ce::CeType;
use crate::ids::JobId;
use crate::node::NodeSpec;

/// Resource requirements a job places on one CE type.
///
/// Every field is optional: an omitted requirement means "any amount of
/// that resource is acceptable" (paper §V-A). The probability that each
/// resource of a generated job is specified is the *job constraint
/// ratio*.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CeRequirement {
    /// CE family the requirement applies to.
    pub ce_type: CeType,
    /// Minimum clock speed (relative to nominal).
    pub min_clock: Option<f64>,
    /// Minimum memory in GB.
    pub min_memory: Option<f64>,
    /// Minimum number of cores. This doubles as the number of cores the
    /// job occupies while running on a non-dedicated CE (a dedicated CE
    /// is wholly occupied regardless).
    pub min_cores: Option<u32>,
}

impl CeRequirement {
    /// A requirement on the given CE type with no constrained resources.
    pub fn any(ce_type: CeType) -> Self {
        CeRequirement {
            ce_type,
            ..Default::default()
        }
    }

    /// Number of cores the job occupies on this CE while running.
    /// Unspecified core requirements occupy a single core.
    #[inline]
    pub fn occupied_cores(&self) -> u32 {
        self.min_cores.unwrap_or(1).max(1)
    }

    /// "How much of the other resources" this requirement asks for —
    /// the quantity the dominant-CE rule maximizes (paper §III-B).
    /// Memory and cores are combined after normalization so that
    /// neither unit dominates artificially.
    pub fn demand(&self, mem_scale: f64, core_scale: f64) -> f64 {
        let mem = self.min_memory.unwrap_or(0.0) / mem_scale.max(f64::MIN_POSITIVE);
        let cores = f64::from(self.min_cores.unwrap_or(0)) / core_scale.max(f64::MIN_POSITIVE);
        mem + cores
    }
}

/// A grid job: independent (no inter-job communication), possibly
/// multi-threaded, requiring one or more CE types.
///
/// ```
/// use pgrid_types::{CeRequirement, CeType, JobId, JobSpec, NodeSpec, CeSpec};
/// // A CUDA-style job: one CPU control core + a GPU kernel.
/// let job = JobSpec::new(
///     JobId(0),
///     vec![
///         CeRequirement { ce_type: CeType::CPU, min_cores: Some(1), ..Default::default() },
///         CeRequirement { ce_type: CeType::gpu(0), min_cores: Some(128), ..Default::default() },
///     ],
///     None,
///     3600.0,
/// );
/// let node = NodeSpec::new(
///     CeSpec::cpu(2.0, 8.0, 4),
///     vec![CeSpec::gpu(0, 2.0, 4.0, 448)],
///     100.0,
/// );
/// assert!(job.satisfied_by(&node));
/// assert_eq!(job.dominant_ce(32.0, 512.0), CeType::gpu(0));
/// assert_eq!(job.runtime_on(2.0), 1800.0); // twice the clock, half the time
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job identifier.
    pub id: JobId,
    /// Per-CE-type requirements. At most one entry per CE type.
    pub ce_reqs: Vec<CeRequirement>,
    /// Minimum node-level disk space in GB, if constrained.
    pub min_disk: Option<f64>,
    /// Execution time, in seconds, on a dominant CE running at the
    /// nominal clock (1.0).
    pub nominal_runtime: f64,
}

impl JobSpec {
    /// Builds a job spec, normalizing the requirement list (merging is
    /// not attempted — duplicates are a caller bug).
    ///
    /// # Panics
    ///
    /// Panics if two requirements name the same CE type.
    pub fn new(
        id: JobId,
        ce_reqs: Vec<CeRequirement>,
        min_disk: Option<f64>,
        nominal_runtime: f64,
    ) -> Self {
        for (i, a) in ce_reqs.iter().enumerate() {
            for b in &ce_reqs[i + 1..] {
                assert!(
                    a.ce_type != b.ce_type,
                    "duplicate requirement for CE type {:?}",
                    a.ce_type
                );
            }
        }
        JobSpec {
            id,
            ce_reqs,
            min_disk,
            nominal_runtime,
        }
    }

    /// The requirement the job places on the given CE type, if any.
    #[inline]
    pub fn req(&self, ty: CeType) -> Option<&CeRequirement> {
        self.ce_reqs.iter().find(|r| r.ce_type == ty)
    }

    /// The job's **dominant CE** type (paper §III-B): the CE requiring
    /// the most of the other resources (memory, cores). Ties are broken
    /// in favour of the *higher* CE type so that an accelerator the job
    /// explicitly asks for wins over an incidental CPU requirement; a
    /// job with no CE requirements at all defaults to the CPU.
    ///
    /// `mem_scale`/`core_scale` normalize the two resource axes; use
    /// [`crate::dims::Normalization::demand_scales`].
    pub fn dominant_ce(&self, mem_scale: f64, core_scale: f64) -> CeType {
        self.ce_reqs
            .iter()
            .max_by(|a, b| {
                let da = a.demand(mem_scale, core_scale);
                let db = b.demand(mem_scale, core_scale);
                da.partial_cmp(&db)
                    .expect("demands are finite")
                    .then(a.ce_type.cmp(&b.ce_type))
            })
            .map_or(CeType::CPU, |r| r.ce_type)
    }

    /// Whether `node` satisfies *all* of the job's requirements — the
    /// condition for the node to be a potential run node.
    pub fn satisfied_by(&self, node: &NodeSpec) -> bool {
        if let Some(d) = self.min_disk {
            if node.disk < d {
                return false;
            }
        }
        self.ce_reqs.iter().all(|r| match node.ce(r.ce_type) {
            None => false,
            Some(ce) => {
                r.min_clock.is_none_or(|c| ce.clock >= c)
                    && r.min_memory.is_none_or(|m| ce.memory >= m)
                    && r.min_cores.is_none_or(|n| ce.cores >= n)
            }
        })
    }

    /// Simulated execution time on a dominant CE with the given clock:
    /// the nominal runtime scaled down by faster clocks and up by
    /// slower ones (paper §V-A).
    #[inline]
    pub fn runtime_on(&self, dominant_clock: f64) -> f64 {
        debug_assert!(dominant_clock > 0.0);
        self.nominal_runtime / dominant_clock
    }

    /// Validity check for property tests.
    pub fn is_valid(&self) -> bool {
        self.nominal_runtime > 0.0
            && self.nominal_runtime.is_finite()
            && self.min_disk.is_none_or(|d| d >= 0.0 && d.is_finite())
            && self.ce_reqs.iter().all(|r| {
                r.min_clock.is_none_or(|c| c > 0.0 && c.is_finite())
                    && r.min_memory.is_none_or(|m| m >= 0.0 && m.is_finite())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::CeSpec;

    fn cuda_job() -> JobSpec {
        // A CUDA-style job: small CPU footprint, big GPU footprint.
        JobSpec::new(
            JobId(0),
            vec![
                CeRequirement {
                    ce_type: CeType::CPU,
                    min_clock: None,
                    min_memory: Some(1.0),
                    min_cores: Some(1),
                },
                CeRequirement {
                    ce_type: CeType::gpu(0),
                    min_clock: Some(1.0),
                    min_memory: Some(2.0),
                    min_cores: Some(128),
                },
            ],
            Some(10.0),
            3600.0,
        )
    }

    fn het_node() -> NodeSpec {
        NodeSpec::new(
            CeSpec::cpu(1.5, 8.0, 4),
            vec![CeSpec::gpu(0, 1.2, 4.0, 448)],
            500.0,
        )
    }

    #[test]
    fn dominant_ce_is_the_gpu_for_cuda_style_jobs() {
        // Paper's motivating example: a CUDA job requires CPU + GPU but
        // the GPU is dominant.
        let j = cuda_job();
        assert_eq!(j.dominant_ce(16.0, 512.0), CeType::gpu(0));
    }

    #[test]
    fn dominant_ce_defaults_to_cpu_without_requirements() {
        let j = JobSpec::new(JobId(1), vec![], None, 60.0);
        assert_eq!(j.dominant_ce(16.0, 512.0), CeType::CPU);
    }

    #[test]
    fn dominant_ce_tie_breaks_toward_accelerator() {
        let j = JobSpec::new(
            JobId(2),
            vec![
                CeRequirement::any(CeType::CPU),
                CeRequirement::any(CeType::gpu(1)),
            ],
            None,
            60.0,
        );
        assert_eq!(j.dominant_ce(16.0, 512.0), CeType::gpu(1));
    }

    #[test]
    fn satisfaction_checks_every_axis() {
        let j = cuda_job();
        let n = het_node();
        assert!(j.satisfied_by(&n));

        // Not enough GPU memory.
        let weak_gpu = NodeSpec::new(
            CeSpec::cpu(1.5, 8.0, 4),
            vec![CeSpec::gpu(0, 1.2, 1.0, 448)],
            500.0,
        );
        assert!(!j.satisfied_by(&weak_gpu));

        // Missing the GPU entirely.
        let cpu_only = NodeSpec::cpu_only(3.0, 32.0, 8, 1000.0);
        assert!(!j.satisfied_by(&cpu_only));

        // Not enough disk.
        let mut small_disk = het_node();
        small_disk.disk = 5.0;
        assert!(!j.satisfied_by(&small_disk));
    }

    #[test]
    fn unspecified_requirements_accept_anything() {
        let j = JobSpec::new(JobId(3), vec![CeRequirement::any(CeType::CPU)], None, 60.0);
        let weakest = NodeSpec::cpu_only(0.1, 0.1, 1, 0.0);
        assert!(j.satisfied_by(&weakest));
    }

    #[test]
    fn runtime_scales_inversely_with_clock() {
        let j = cuda_job();
        assert!((j.runtime_on(1.0) - 3600.0).abs() < 1e-9);
        assert!((j.runtime_on(2.0) - 1800.0).abs() < 1e-9);
        assert!((j.runtime_on(0.5) - 7200.0).abs() < 1e-9);
    }

    #[test]
    fn occupied_cores_defaults_to_one() {
        assert_eq!(CeRequirement::any(CeType::CPU).occupied_cores(), 1);
        let r = CeRequirement {
            ce_type: CeType::CPU,
            min_cores: Some(4),
            ..Default::default()
        };
        assert_eq!(r.occupied_cores(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate requirement")]
    fn rejects_duplicate_ce_requirements() {
        JobSpec::new(
            JobId(4),
            vec![
                CeRequirement::any(CeType::CPU),
                CeRequirement::any(CeType::CPU),
            ],
            None,
            60.0,
        );
    }

    #[test]
    fn validity() {
        assert!(cuda_job().is_valid());
        let mut j = cuda_job();
        j.nominal_runtime = 0.0;
        assert!(!j.is_valid());
    }
}
