//! Embedding of node capabilities and job requirements into the CAN's
//! d-dimensional coordinate space (paper §II-A, §III-A).
//!
//! "Each dimension of the CAN represents the amount of that resource,
//! so that nodes can be sorted according to the values for each
//! resource." A symmetric multi-core system uses 5 dimensions (CPU
//! clock, memory, disk, cores, plus a random *virtual* dimension); each
//! supported GPU family adds 3 more (GPU clock, GPU memory, GPU cores),
//! giving the 5-, 8-, 11- and 14-dimensional CANs of the evaluation.

use crate::ce::CeType;
use crate::job::JobSpec;
use crate::node::NodeSpec;

/// Largest coordinate value produced by normalization. Coordinates live
/// in the half-open unit interval `[0, 1)`; capping below 1 keeps even
/// "maxed-out" resources strictly inside the CAN space.
pub const MAX_COORD: f64 = 0.999_999;

/// What a CAN dimension measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimKind {
    /// CPU clock speed (relative to nominal).
    CpuClock,
    /// CPU (main) memory, GB.
    CpuMemory,
    /// Node-level disk space, GB.
    Disk,
    /// Number of CPU cores.
    CpuCores,
    /// Random virtual dimension distinguishing identical nodes and
    /// spreading load (paper §II-B).
    Virtual,
    /// GPU clock of the given GPU slot.
    GpuClock(u8),
    /// GPU memory of the given GPU slot, GB.
    GpuMemory(u8),
    /// GPU core count of the given GPU slot.
    GpuCores(u8),
}

impl DimKind {
    /// The CE type whose resources this dimension describes, or `None`
    /// for the node-level virtual dimension. Disk is grouped with the
    /// CPU (paper §III-A lists disk among the CPU's characteristics).
    pub fn ce_type(self) -> Option<CeType> {
        match self {
            DimKind::CpuClock | DimKind::CpuMemory | DimKind::Disk | DimKind::CpuCores => {
                Some(CeType::CPU)
            }
            DimKind::Virtual => None,
            DimKind::GpuClock(s) | DimKind::GpuMemory(s) | DimKind::GpuCores(s) => {
                Some(CeType::gpu(s))
            }
        }
    }
}

/// Upper bounds used to normalize raw resource quantities into `[0,1)`
/// coordinates. Values at or above the bound map to [`MAX_COORD`].
#[derive(Debug, Clone, PartialEq)]
pub struct Normalization {
    /// Maximum CPU clock (relative units).
    pub cpu_clock: f64,
    /// Maximum CPU memory, GB.
    pub cpu_memory: f64,
    /// Maximum disk, GB.
    pub disk: f64,
    /// Maximum CPU core count.
    pub cpu_cores: f64,
    /// Maximum GPU clock (relative units).
    pub gpu_clock: f64,
    /// Maximum GPU memory, GB.
    pub gpu_memory: f64,
    /// Maximum GPU core count.
    pub gpu_cores: f64,
}

impl Normalization {
    /// Bounds matching the synthetic workload of the evaluation
    /// (`pgrid-workload`): clocks up to 4× nominal, 32 GB RAM, 2 TB
    /// disk, 8 CPU cores, 6 GB GPU memory, 512 GPU cores.
    pub fn paper_defaults() -> Self {
        Normalization {
            cpu_clock: 4.0,
            cpu_memory: 32.0,
            disk: 2048.0,
            cpu_cores: 8.0,
            gpu_clock: 4.0,
            gpu_memory: 6.0,
            gpu_cores: 512.0,
        }
    }

    /// Scales used by the dominant-CE demand computation
    /// ([`JobSpec::dominant_ce`]): one shared memory scale and one
    /// shared core scale so CPU and GPU demands are comparable.
    pub fn demand_scales(&self) -> (f64, f64) {
        (
            self.cpu_memory.max(self.gpu_memory),
            self.cpu_cores.max(self.gpu_cores),
        )
    }

    fn scale_for(&self, kind: DimKind) -> f64 {
        match kind {
            DimKind::CpuClock => self.cpu_clock,
            DimKind::CpuMemory => self.cpu_memory,
            DimKind::Disk => self.disk,
            DimKind::CpuCores => self.cpu_cores,
            DimKind::Virtual => 1.0,
            DimKind::GpuClock(_) => self.gpu_clock,
            DimKind::GpuMemory(_) => self.gpu_memory,
            DimKind::GpuCores(_) => self.gpu_cores,
        }
    }

    /// Normalizes a raw quantity for the given dimension into `[0,1)`.
    #[inline]
    pub fn normalize(&self, kind: DimKind, raw: f64) -> f64 {
        let s = self.scale_for(kind);
        debug_assert!(s > 0.0, "normalization scale must be positive");
        (raw / s).clamp(0.0, MAX_COORD)
    }
}

/// The mapping between resources and CAN dimensions for a grid
/// supporting a fixed number of GPU families.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionLayout {
    gpu_slots: u8,
    norm: Normalization,
    kinds: Vec<DimKind>,
}

impl DimensionLayout {
    /// Index of the virtual dimension (always dimension 4).
    pub const VIRTUAL_DIM: usize = 4;

    /// Builds the layout for `gpu_slots` supported GPU families.
    /// `gpu_slots = 0, 1, 2, 3` yields the paper's 5-, 8-, 11- and
    /// 14-dimensional CANs.
    pub fn new(gpu_slots: u8, norm: Normalization) -> Self {
        let mut kinds = vec![
            DimKind::CpuClock,
            DimKind::CpuMemory,
            DimKind::Disk,
            DimKind::CpuCores,
            DimKind::Virtual,
        ];
        for s in 0..gpu_slots {
            kinds.push(DimKind::GpuClock(s));
            kinds.push(DimKind::GpuMemory(s));
            kinds.push(DimKind::GpuCores(s));
        }
        DimensionLayout {
            gpu_slots,
            norm,
            kinds,
        }
    }

    /// The paper's experimental layout for a given total dimension
    /// count (must be 5, 8, 11 or 14).
    pub fn with_dims(d: usize) -> Self {
        assert!(
            d >= 5 && (d - 5).is_multiple_of(3),
            "CAN dimension count must be 5 + 3k, got {d}"
        );
        DimensionLayout::new(((d - 5) / 3) as u8, Normalization::paper_defaults())
    }

    /// Total number of CAN dimensions `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.kinds.len()
    }

    /// Number of supported GPU families.
    #[inline]
    pub fn gpu_slots(&self) -> u8 {
        self.gpu_slots
    }

    /// The normalization bounds in use.
    #[inline]
    pub fn normalization(&self) -> &Normalization {
        &self.norm
    }

    /// What dimension `i` measures.
    #[inline]
    pub fn kind(&self, i: usize) -> DimKind {
        self.kinds[i]
    }

    /// All dimension kinds in order.
    #[inline]
    pub fn kinds(&self) -> &[DimKind] {
        &self.kinds
    }

    /// All CE types representable in this layout (CPU first).
    pub fn ce_types(&self) -> Vec<CeType> {
        let mut v = vec![CeType::CPU];
        v.extend((0..self.gpu_slots).map(CeType::gpu));
        v
    }

    /// The job's dominant CE under this layout's normalization.
    pub fn dominant_ce(&self, job: &JobSpec) -> CeType {
        let (m, c) = self.norm.demand_scales();
        job.dominant_ce(m, c)
    }

    /// Embeds a node's capabilities as a CAN coordinate. `virtual_value`
    /// is the node's random virtual coordinate in `[0,1)`. Missing GPU
    /// slots map to the origin of their dimensions, so jobs requiring
    /// that GPU route past them.
    pub fn node_coord(&self, node: &NodeSpec, virtual_value: f64) -> Vec<f64> {
        debug_assert!((0.0..1.0).contains(&virtual_value));
        self.kinds
            .iter()
            .map(|&k| match k {
                DimKind::CpuClock => self.norm.normalize(k, node.cpu().clock),
                DimKind::CpuMemory => self.norm.normalize(k, node.cpu().memory),
                DimKind::Disk => self.norm.normalize(k, node.disk),
                DimKind::CpuCores => self.norm.normalize(k, f64::from(node.cpu().cores)),
                DimKind::Virtual => virtual_value.clamp(0.0, MAX_COORD),
                DimKind::GpuClock(s) => node
                    .ce(CeType::gpu(s))
                    .map_or(0.0, |g| self.norm.normalize(k, g.clock)),
                DimKind::GpuMemory(s) => node
                    .ce(CeType::gpu(s))
                    .map_or(0.0, |g| self.norm.normalize(k, g.memory)),
                DimKind::GpuCores(s) => node
                    .ce(CeType::gpu(s))
                    .map_or(0.0, |g| self.norm.normalize(k, f64::from(g.cores))),
            })
            .collect()
    }

    /// Embeds a job's requirements as the CAN coordinate it is routed
    /// to. Unconstrained resources map to 0 ("any amount acceptable"),
    /// so every node beyond the coordinate satisfies the job.
    /// `virtual_value` spreads otherwise-identical jobs across the
    /// virtual dimension.
    pub fn job_coord(&self, job: &JobSpec, virtual_value: f64) -> Vec<f64> {
        debug_assert!((0.0..1.0).contains(&virtual_value));
        self.kinds
            .iter()
            .map(|&k| match k {
                DimKind::CpuClock => job
                    .req(CeType::CPU)
                    .and_then(|r| r.min_clock)
                    .map_or(0.0, |v| self.norm.normalize(k, v)),
                DimKind::CpuMemory => job
                    .req(CeType::CPU)
                    .and_then(|r| r.min_memory)
                    .map_or(0.0, |v| self.norm.normalize(k, v)),
                DimKind::Disk => job.min_disk.map_or(0.0, |v| self.norm.normalize(k, v)),
                DimKind::CpuCores => job
                    .req(CeType::CPU)
                    .and_then(|r| r.min_cores)
                    .map_or(0.0, |v| self.norm.normalize(k, f64::from(v))),
                DimKind::Virtual => virtual_value.clamp(0.0, MAX_COORD),
                DimKind::GpuClock(s) => job
                    .req(CeType::gpu(s))
                    .and_then(|r| r.min_clock)
                    .map_or(0.0, |v| self.norm.normalize(k, v)),
                DimKind::GpuMemory(s) => job
                    .req(CeType::gpu(s))
                    .and_then(|r| r.min_memory)
                    .map_or(0.0, |v| self.norm.normalize(k, v)),
                DimKind::GpuCores(s) => job
                    .req(CeType::gpu(s))
                    .and_then(|r| r.min_cores)
                    .map_or(0.0, |v| self.norm.normalize(k, f64::from(v))),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::CeSpec;
    use crate::ids::JobId;
    use crate::job::CeRequirement;

    #[test]
    fn paper_dimension_counts() {
        assert_eq!(DimensionLayout::with_dims(5).dims(), 5);
        assert_eq!(DimensionLayout::with_dims(8).dims(), 8);
        assert_eq!(DimensionLayout::with_dims(11).dims(), 11);
        assert_eq!(DimensionLayout::with_dims(14).dims(), 14);
        assert_eq!(DimensionLayout::with_dims(11).gpu_slots(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension count")]
    fn rejects_non_paper_dimension_counts() {
        DimensionLayout::with_dims(7);
    }

    #[test]
    fn eleven_dim_layout_matches_paper_example() {
        // "if a machine has two GPUs (different CEs) in addition to a
        // CPU ... the total number of CAN dimensions required is 11"
        let l = DimensionLayout::with_dims(11);
        assert_eq!(l.kind(0), DimKind::CpuClock);
        assert_eq!(l.kind(1), DimKind::CpuMemory);
        assert_eq!(l.kind(2), DimKind::Disk);
        assert_eq!(l.kind(3), DimKind::CpuCores);
        assert_eq!(l.kind(4), DimKind::Virtual);
        assert_eq!(l.kind(5), DimKind::GpuClock(0));
        assert_eq!(l.kind(8), DimKind::GpuClock(1));
        assert_eq!(l.kind(10), DimKind::GpuCores(1));
        assert_eq!(DimensionLayout::VIRTUAL_DIM, 4);
        assert_eq!(l.kind(DimensionLayout::VIRTUAL_DIM), DimKind::Virtual);
    }

    #[test]
    fn dim_kind_ce_types() {
        assert_eq!(DimKind::CpuClock.ce_type(), Some(CeType::CPU));
        assert_eq!(DimKind::Disk.ce_type(), Some(CeType::CPU));
        assert_eq!(DimKind::Virtual.ce_type(), None);
        assert_eq!(DimKind::GpuMemory(1).ce_type(), Some(CeType::gpu(1)));
    }

    #[test]
    fn node_coords_are_in_unit_interval() {
        let l = DimensionLayout::with_dims(11);
        let n = NodeSpec::new(
            CeSpec::cpu(4.0, 32.0, 8),
            vec![CeSpec::gpu(0, 4.0, 6.0, 512)],
            2048.0,
        );
        let c = l.node_coord(&n, 0.5);
        assert_eq!(c.len(), 11);
        for &x in &c {
            assert!((0.0..1.0).contains(&x), "coordinate {x} out of range");
        }
        // Maxed-out resources hit MAX_COORD, not 1.0.
        assert_eq!(c[0], MAX_COORD);
    }

    #[test]
    fn missing_gpu_maps_to_origin() {
        let l = DimensionLayout::with_dims(11);
        let n = NodeSpec::cpu_only(2.0, 8.0, 4, 100.0);
        let c = l.node_coord(&n, 0.25);
        for x in &c[5..11] {
            assert_eq!(*x, 0.0);
        }
    }

    #[test]
    fn job_coord_unconstrained_is_origin() {
        let l = DimensionLayout::with_dims(8);
        let j = JobSpec::new(JobId(0), vec![], None, 60.0);
        let c = l.job_coord(&j, 0.0);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn satisfying_node_dominates_job_coordinate() {
        // The CAN-routing invariant: if a node satisfies a job, the
        // node's coordinate is >= the job's coordinate on every real
        // dimension.
        let l = DimensionLayout::with_dims(8);
        let j = JobSpec::new(
            JobId(1),
            vec![
                CeRequirement {
                    ce_type: CeType::CPU,
                    min_clock: Some(1.0),
                    min_memory: Some(4.0),
                    min_cores: Some(2),
                },
                CeRequirement {
                    ce_type: CeType::gpu(0),
                    min_clock: Some(0.8),
                    min_memory: Some(1.0),
                    min_cores: Some(64),
                },
            ],
            Some(50.0),
            60.0,
        );
        let n = NodeSpec::new(
            CeSpec::cpu(2.0, 8.0, 4),
            vec![CeSpec::gpu(0, 1.0, 2.0, 128)],
            100.0,
        );
        assert!(j.satisfied_by(&n));
        let jc = l.job_coord(&j, 0.0);
        let nc = l.node_coord(&n, 0.9);
        for i in 0..l.dims() {
            if i == DimensionLayout::VIRTUAL_DIM {
                continue;
            }
            assert!(
                nc[i] >= jc[i],
                "dimension {i}: node {} < job {}",
                nc[i],
                jc[i]
            );
        }
    }

    #[test]
    fn demand_scales_are_shared_maxima() {
        let n = Normalization::paper_defaults();
        let (m, c) = n.demand_scales();
        assert_eq!(m, 32.0);
        assert_eq!(c, 512.0);
    }

    #[test]
    fn normalize_clamps() {
        let n = Normalization::paper_defaults();
        assert_eq!(n.normalize(DimKind::CpuClock, 100.0), MAX_COORD);
        assert_eq!(n.normalize(DimKind::CpuClock, -1.0), 0.0);
        let half = n.normalize(DimKind::CpuClock, 2.0);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ce_types_enumeration() {
        let l = DimensionLayout::with_dims(11);
        assert_eq!(
            l.ce_types(),
            vec![CeType::CPU, CeType::gpu(0), CeType::gpu(1)]
        );
    }
}
