//! The paper's scoring and decision functions (Equations 1–4, §III-B).
//!
//! * Eq. 1 — score of a **dedicated** CE: queue length / clock.
//! * Eq. 2 — score of a **non-dedicated** CE: core utilization / clock.
//! * Eq. 3 — job-pushing objective `F_D(N, C)` over aggregated load.
//! * Eq. 4 — probabilistic stopping rule `P(N)`.
//!
//! Lower scores are better for Eqs. 1–3 ("these score functions prefer
//! the least utilized node for the dominant CE type, relative to its CE
//! clock speed").

/// Eq. 1 — score of a dedicated CE (e.g. a 2011-era GPU that runs one
/// job at a time): the number of running + queued jobs divided by the
/// CE's clock speed.
#[inline]
pub fn score_dedicated(job_queue_size: usize, clock: f64) -> f64 {
    debug_assert!(clock > 0.0);
    job_queue_size as f64 / clock
}

/// Eq. 2 — score of a non-dedicated CE (e.g. a multi-core CPU): the
/// fraction of cores required by running + waiting jobs, divided by the
/// CE's clock speed.
#[inline]
pub fn score_non_dedicated(required_cores: u32, number_of_cores: u32, clock: f64) -> f64 {
    debug_assert!(clock > 0.0);
    debug_assert!(number_of_cores > 0);
    (f64::from(required_cores) / f64::from(number_of_cores)) / clock
}

/// Eq. 3 — the objective minimized when choosing the dimension and
/// target node to push a job toward:
/// `F_D(N, C) = AI.SumOfRequiredCores / AI.NumberOfCores²`,
/// where `AI` is the aggregated load information for CE type `C` beyond
/// neighbor `N` along dimension `D`. The squared denominator makes
/// regions with plentiful cores attractive even when moderately loaded.
///
/// An empty region (`number_of_cores == 0`) cannot host the job's
/// dominant CE at all and scores `+inf`.
#[inline]
pub fn objective_fd(sum_of_required_cores: f64, number_of_cores: f64) -> f64 {
    debug_assert!(sum_of_required_cores >= 0.0);
    debug_assert!(number_of_cores >= 0.0);
    if number_of_cores <= 0.0 {
        f64::INFINITY
    } else {
        sum_of_required_cores / (number_of_cores * number_of_cores)
    }
}

/// Eq. 4 — the probability that job pushing *stops* at the current
/// node: `P(N) = 1 / (1 + AI_TD(N).NumberOfNodes)^SF`, where
/// `number_of_nodes` counts nodes in the outer region along the chosen
/// target dimension and `SF` is the stopping factor.
///
/// Few remaining candidate nodes ⇒ high stopping probability; a rich
/// outer region ⇒ keep pushing. A larger stopping factor stops sooner.
#[inline]
pub fn stop_probability(number_of_nodes: u64, stopping_factor: f64) -> f64 {
    debug_assert!(stopping_factor >= 0.0);
    (1.0 + number_of_nodes as f64).powf(stopping_factor).recip()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_prefers_short_queues_and_fast_clocks() {
        // Idle CE scores 0 regardless of clock.
        assert_eq!(score_dedicated(0, 1.0), 0.0);
        // Same queue, faster clock wins (lower score).
        assert!(score_dedicated(4, 2.0) < score_dedicated(4, 1.0));
        // Same clock, shorter queue wins.
        assert!(score_dedicated(1, 1.0) < score_dedicated(3, 1.0));
        assert_eq!(score_dedicated(3, 1.5), 2.0);
    }

    #[test]
    fn eq2_is_utilization_over_clock() {
        // 4 of 8 cores required at clock 2.0 -> (0.5)/2 = 0.25
        assert_eq!(score_non_dedicated(4, 8, 2.0), 0.25);
        // Oversubscription pushes the score above 1/clock.
        assert!(score_non_dedicated(16, 8, 1.0) > 1.0);
        assert_eq!(score_non_dedicated(0, 8, 3.0), 0.0);
    }

    #[test]
    fn eq3_prefers_many_cores_quadratically() {
        // Same load, twice the cores -> 4x lower objective.
        let small = objective_fd(10.0, 10.0);
        let big = objective_fd(10.0, 20.0);
        assert!((small / big - 4.0).abs() < 1e-12);
    }

    #[test]
    fn eq3_empty_region_is_infinitely_bad() {
        assert_eq!(objective_fd(0.0, 0.0), f64::INFINITY);
        assert_eq!(objective_fd(5.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn eq3_idle_region_scores_zero() {
        assert_eq!(objective_fd(0.0, 100.0), 0.0);
    }

    #[test]
    fn eq4_matches_closed_form() {
        // SF = 1: P = 1/(1+n)
        assert!((stop_probability(0, 1.0) - 1.0).abs() < 1e-12);
        assert!((stop_probability(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((stop_probability(9, 1.0) - 0.1).abs() < 1e-12);
        // SF = 2 stops sooner than SF = 1 for the same region.
        assert!(stop_probability(9, 2.0) < stop_probability(9, 1.0));
    }

    #[test]
    fn eq4_is_a_probability() {
        for n in [0u64, 1, 5, 100, 10_000] {
            for sf in [0.0, 0.5, 1.0, 2.0, 4.0] {
                let p = stop_probability(n, sf);
                assert!((0.0..=1.0).contains(&p), "P({n}, {sf}) = {p}");
            }
        }
    }

    #[test]
    fn eq4_monotone_decreasing_in_nodes() {
        let mut prev = f64::INFINITY;
        for n in 0..50 {
            let p = stop_probability(n, 1.5);
            assert!(p <= prev);
            prev = p;
        }
    }
}
