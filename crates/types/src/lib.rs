//! Heterogeneous computing-element (CE), node, and job model for the
//! P2P desktop grid of *"Supporting Computing Element Heterogeneity in
//! P2P Grids"* (Lee, Keleher, Sussman — IEEE CLUSTER 2011).
//!
//! The paper models a grid node as a set of **computing elements**: a
//! (possibly multi-core) CPU plus zero or more GPUs of distinct types.
//! Each CE has its own clock speed, memory and core count, and is either
//! *dedicated* (runs a single job at a time, like a 2011-era GPU) or
//! *non-dedicated* (multiple jobs may share its cores, like a CPU).
//!
//! Jobs carry per-CE-type resource requirements; the CE a job mostly
//! computes on is its **dominant CE** and drives both the job's runtime
//! scaling and the matchmaker's scoring (paper §III-B).
//!
//! This crate also defines the [`DimensionLayout`] that embeds node
//! capabilities and job requirements into the d-dimensional CAN
//! coordinate space (paper §III-A: 5 dims for a CPU-only system,
//! +3 dims per supported GPU type, +1 random *virtual* dimension), and
//! the paper's scoring equations (Eqs. 1–4) in [`score`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ce;
pub mod dims;
pub mod ids;
pub mod job;
pub mod node;
pub mod score;

pub use ce::{CeSpec, CeType};
pub use dims::{DimKind, DimensionLayout, Normalization};
pub use ids::{JobId, NodeId};
pub use job::{CeRequirement, JobSpec};
pub use node::NodeSpec;
