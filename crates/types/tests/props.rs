//! Property-based tests for the CE/node/job model.

use pgrid_types::*;
use proptest::prelude::*;

fn arb_cpu() -> impl Strategy<Value = CeSpec> {
    (0.1f64..4.0, 0.5f64..64.0, 1u32..16)
        .prop_map(|(clock, mem, cores)| CeSpec::cpu(clock, mem, cores))
}

fn arb_gpu(slot: u8) -> impl Strategy<Value = CeSpec> {
    (0.1f64..4.0, 0.5f64..8.0, 32u32..1024)
        .prop_map(move |(clock, mem, cores)| CeSpec::gpu(slot, clock, mem, cores))
}

fn arb_node() -> impl Strategy<Value = NodeSpec> {
    (
        arb_cpu(),
        prop::option::of(arb_gpu(0)),
        prop::option::of(arb_gpu(1)),
        1.0f64..4096.0,
    )
        .prop_map(|(cpu, g0, g1, disk)| {
            let gpus: Vec<CeSpec> = [g0, g1].into_iter().flatten().collect();
            NodeSpec::new(cpu, gpus, disk)
        })
}

fn arb_req(ty: CeType) -> impl Strategy<Value = CeRequirement> {
    (
        prop::option::of(0.1f64..4.0),
        prop::option::of(0.5f64..8.0),
        prop::option::of(1u32..512),
    )
        .prop_map(move |(clock, mem, cores)| CeRequirement {
            ce_type: ty,
            min_clock: clock,
            min_memory: mem,
            min_cores: cores,
        })
}

fn arb_job() -> impl Strategy<Value = JobSpec> {
    (
        arb_req(CeType::CPU),
        prop::option::of(arb_req(CeType::gpu(0))),
        prop::option::of(0.1f64..1024.0),
        60.0f64..7200.0,
    )
        .prop_map(|(cpu, gpu, disk, runtime)| {
            let mut reqs = vec![cpu];
            reqs.extend(gpu);
            JobSpec::new(JobId(0), reqs, disk, runtime)
        })
}

proptest! {
    /// Node coordinates always live in [0, 1).
    #[test]
    fn node_coords_in_unit_interval(node in arb_node(), v in 0.0f64..0.999) {
        let layout = DimensionLayout::with_dims(11);
        for x in layout.node_coord(&node, v) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// Job coordinates always live in [0, 1) and are the origin for
    /// unconstrained dimensions.
    #[test]
    fn job_coords_in_unit_interval(job in arb_job(), v in 0.0f64..0.999) {
        let layout = DimensionLayout::with_dims(11);
        let c = layout.job_coord(&job, v);
        for x in &c {
            prop_assert!((0.0..1.0).contains(x));
        }
        // GPU1 dims must be 0: the generator never constrains GPU1.
        prop_assert_eq!(c[8], 0.0);
        prop_assert_eq!(c[9], 0.0);
        prop_assert_eq!(c[10], 0.0);
    }

    /// Strengthening a node's resources never breaks a job it already
    /// satisfies (satisfaction is monotone in capability).
    #[test]
    fn satisfaction_is_monotone(node in arb_node(), job in arb_job(), boost in 1.0f64..3.0) {
        if job.satisfied_by(&node) {
            let stronger = NodeSpec::new(
                {
                    let mut c = node.cpu().clone();
                    c.clock *= boost;
                    c.memory *= boost;
                    c.cores *= 2;
                    c
                },
                node.ces()[1..]
                    .iter()
                    .map(|g| {
                        let mut g = g.clone();
                        g.clock *= boost;
                        g.memory *= boost;
                        g.cores *= 2;
                        g
                    })
                    .collect(),
                node.disk * boost,
            );
            prop_assert!(job.satisfied_by(&stronger));
        }
    }

    /// The dominant CE is always one the job actually requires.
    #[test]
    fn dominant_ce_is_a_required_ce(job in arb_job()) {
        let layout = DimensionLayout::with_dims(11);
        let dom = layout.dominant_ce(&job);
        prop_assert!(
            job.req(dom).is_some() || (dom.is_cpu() && job.ce_reqs.is_empty())
        );
    }

    /// Runtime scaling is exactly inverse in the clock.
    #[test]
    fn runtime_scaling_inverse(job in arb_job(), clock in 0.1f64..8.0) {
        let r = job.runtime_on(clock);
        prop_assert!((r * clock - job.nominal_runtime).abs() < 1e-6);
    }

    /// Eq. 1 and Eq. 2 are monotone: more load or less clock never
    /// lowers the score.
    #[test]
    fn scores_are_monotone(
        q in 0usize..50,
        extra in 1usize..10,
        clock in 0.1f64..4.0,
        used in 0u32..32,
        more in 1u32..8,
        total in 1u32..33,
    ) {
        prop_assert!(
            score::score_dedicated(q + extra, clock) >= score::score_dedicated(q, clock)
        );
        prop_assert!(
            score::score_dedicated(q, clock * 2.0) <= score::score_dedicated(q, clock)
        );
        let total = total.max(1);
        prop_assert!(
            score::score_non_dedicated(used + more, total, clock)
                >= score::score_non_dedicated(used, total, clock)
        );
    }

    /// Eq. 4 is a probability, monotone decreasing in region size and
    /// in the stopping factor.
    #[test]
    fn stop_probability_properties(n in 0u64..100_000, sf in 0.0f64..8.0) {
        let p = score::stop_probability(n, sf);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(score::stop_probability(n + 1, sf) <= p);
        prop_assert!(score::stop_probability(n, sf + 0.5) <= p + 1e-12);
    }

    /// Normalization round-trip: normalize is monotone and clamped.
    #[test]
    fn normalization_monotone(a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let n = Normalization::paper_defaults();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            n.normalize(DimKind::CpuMemory, lo) <= n.normalize(DimKind::CpuMemory, hi)
        );
    }
}
