//! Root facade of the `p2p-ce-grid` workspace: re-exports the public
//! API of the [`pgrid`] crate so examples and integration tests can use
//! a single import path.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! the per-figure reproduction results.

#![forbid(unsafe_code)]

pub use pgrid::*;
