//! Working directly with the CAN substrate (paper §II-A, §IV): joins
//! that split zones, the split-history take-over plan, graceful leaves
//! vs crashes, heartbeat schemes, and broken-link accounting.
//!
//! This mirrors the paper's Figures 2 and 3 on a small 2-dimensional
//! CAN you can print and follow.
//!
//! Run with: `cargo run --release --example can_membership`

use p2p_ce_grid::prelude::*;

fn main() {
    // A 2-D CAN with the compact heartbeat scheme.
    let mut can = CanSim::new(ProtocolConfig::new(2, HeartbeatScheme::Compact))
        .expect("valid protocol config");

    // Four nodes join at the quadrant centers: the split tree cuts the
    // space like Figure 3 (vertical first, then horizontal).
    let a = can.join(vec![0.25, 0.25]).unwrap();
    let b = can.join(vec![0.75, 0.25]).unwrap();
    let c = can.join(vec![0.25, 0.75]).unwrap();
    let d = can.join(vec![0.75, 0.75]).unwrap();
    println!("zones after four joins:");
    for id in can.members() {
        println!(
            "  {id}: {:?}  neighbors {:?}",
            can.zone(id),
            can.true_neighbors(id)
        );
    }

    // Take-over plans are predetermined by the split history —
    // "node A and node C are take-over nodes for each other" (§IV-B).
    println!("\ntake-over plans (who inherits whose zone; the compact");
    println!("scheme sends full state exactly to these targets):");
    for id in can.members() {
        println!("  {id} -> {:?}", can.takeover_targets(id));
    }

    // Heartbeats run every 60 simulated seconds.
    can.advance_to(can.now() + 180.0);
    println!(
        "\nafter 3 heartbeat rounds: {} messages sent, {} broken links",
        can.accounting().total().messages,
        can.broken_links()
    );

    // A graceful leave hands the zone to the sibling (Figure 3): b's
    // zone merges back.
    can.leave(b, true);
    println!("\nafter {b} leaves gracefully:");
    for id in can.members() {
        println!("  {id}: {:?}", can.zone(id));
    }
    assert_eq!(can.broken_links(), 0, "graceful leaves repair instantly");

    // A crash is only discovered via the failure timeout; the heir
    // recovers from the victim's cached full heartbeat.
    can.advance_to(can.now() + 120.0); // make sure caches are fresh
    can.leave(d, false);
    println!("\n{d} crashed; zone ownership transfers immediately in ground");
    println!("truth, but neighbors only learn after the failure timeout:");
    println!(
        "  broken links right after the crash: {}",
        can.broken_links()
    );
    can.advance_to(can.now() + 200.0); // > fail_timeout
    println!(
        "  broken links after detection + take-over: {}",
        can.broken_links()
    );

    // Routing still reaches every point of the space.
    let p = vec![0.9, 0.9];
    let owner = can.owner_at(&p).unwrap();
    let route = p2p_ce_grid::can::route(&can, a, &p).unwrap();
    println!(
        "\nrouting from {a} to {p:?}: owner {owner}, {} hops",
        route.hops
    );
    assert_eq!(route.owner, owner);
    let _ = c;
}
