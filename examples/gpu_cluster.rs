//! A CUDA-era GPU cluster scenario (the paper's §III-B motivation):
//! jobs that need both a CPU and a GPU, where "the CPU is used to
//! control multiple threads in the GPU and the majority of the
//! computation is done on the GPU" — so the GPU is the job's
//! **dominant CE** and must drive matchmaking.
//!
//! This example builds an explicit mixed cluster, classifies jobs by
//! dominant CE, and shows why CE-aware scoring matters: a node whose
//! CPU is busy but whose GPU is idle is still an *acceptable node* for
//! a GPU-dominant job.
//!
//! Run with: `cargo run --release --example gpu_cluster`

use p2p_ce_grid::prelude::*;
use p2p_ce_grid::sched::StaticGrid;

fn main() {
    // A hand-built population: CPU-only workstations, single-GPU
    // machines of two families, and a few dual-GPU "workhorses".
    let mut population = Vec::new();
    for i in 0..40 {
        let clock = 1.0 + 0.5 * f64::from(i % 4);
        population.push(NodeSpec::cpu_only(clock, 8.0, 4, 256.0));
    }
    for i in 0..25 {
        population.push(NodeSpec::new(
            CeSpec::cpu(2.0, 8.0, 4),
            vec![CeSpec::gpu(0, 1.0 + f64::from(i % 3), 4.0, 448)],
            512.0,
        ));
    }
    for _ in 0..15 {
        population.push(NodeSpec::new(
            CeSpec::cpu(1.5, 4.0, 2),
            vec![CeSpec::gpu(1, 2.0, 2.0, 240)],
            256.0,
        ));
    }
    for _ in 0..10 {
        population.push(NodeSpec::new(
            CeSpec::cpu(3.0, 32.0, 8),
            vec![CeSpec::gpu(0, 4.0, 6.0, 512), CeSpec::gpu(1, 3.0, 4.0, 240)],
            2048.0,
        ));
    }
    println!(
        "cluster: {} nodes ({} CPU-only, 25 GPU0, 15 GPU1, 10 dual-GPU)\n",
        population.len(),
        40
    );

    let layout = DimensionLayout::with_dims(11);
    let grid = StaticGrid::build(layout.clone(), population, 42);

    // A CUDA-style job: 1 CPU control thread + a big GPU0 kernel.
    let cuda_job = JobSpec::new(
        JobId(0),
        vec![
            CeRequirement {
                ce_type: CeType::CPU,
                min_cores: Some(1),
                ..Default::default()
            },
            CeRequirement {
                ce_type: CeType::gpu(0),
                min_clock: Some(2.0),
                min_memory: Some(4.0),
                min_cores: Some(256),
            },
        ],
        Some(100.0),
        3600.0,
    );
    let dominant = layout.dominant_ce(&cuda_job);
    println!("CUDA job requires CPU + GPU0; dominant CE = {dominant}");
    let eligible = grid
        .runtimes()
        .iter()
        .filter(|rt| cuda_job.satisfied_by(&rt.spec))
        .count();
    println!("eligible run nodes: {eligible} of {}", grid.len());

    // Place a stream of such jobs with can-het and watch the scores.
    let mut matchmaker = PushingMatchmaker::heterogeneous(&grid, PushParams::default());
    matchmaker.refresh(&grid, 0.0);
    let mut rng = SimRng::seed_from_u64(7);
    let mut grid = grid;
    println!("\nplacing 8 CUDA jobs in a row (the grid fills up):");
    for i in 0..8 {
        let mut job = cuda_job.clone();
        job.id = JobId(i);
        let placement = matchmaker.place(&grid, &job, &mut rng);
        let rt = grid.runtime(placement.node);
        let gpu = rt.spec.ce(CeType::gpu(0)).unwrap();
        println!(
            "  job {i}: node {} (GPU0 clock {:.1}, Eq.1 score {:.2}) after {} route hops + {} pushes",
            placement.node,
            gpu.clock,
            rt.score(CeType::gpu(0)).unwrap(),
            placement.route_hops,
            placement.pushes,
        );
        let node = placement.node;
        grid.with_runtime_mut(node, |rt| {
            rt.enqueue(job, 0.0);
            rt.start_ready();
        });
        matchmaker.refresh(&grid, 0.0);
    }

    println!(
        "\nEach successive job lands on the fastest GPU still idle — the free-node\n\
         preference plus Eq. 1 scoring of the dominant CE (queue length / clock)."
    );
}
