//! Workload traces as an interchange format: generate a population and
//! a job stream, save both as plain-text traces, read them back, and
//! replay them through a scheduler — the workflow for pinning a
//! workload while iterating on matchmaking policy.
//!
//! Run with: `cargo run --release --example trace_pipeline`

use p2p_ce_grid::prelude::*;
use p2p_ce_grid::sched::{run_trace, PushingMatchmaker, StaticGrid};
use p2p_ce_grid::types::DimensionLayout;
use p2p_ce_grid::workload::trace;

fn main() {
    // 1. Generate.
    let node_cfg = NodeGenConfig::paper_defaults(2);
    let population = generate_nodes(&node_cfg, 120, 99);
    let mut stream = JobStream::with_population(
        JobGenConfig::paper_defaults(2, 0.6, 25.0),
        99,
        population.clone(),
    );
    let jobs = stream.take_jobs(800);

    // 2. Save as traces (plain text, diffable, tool-agnostic).
    let dir = std::env::temp_dir().join("pgrid_trace_demo");
    std::fs::create_dir_all(&dir).unwrap();
    let nodes_path = dir.join("nodes.trace");
    let jobs_path = dir.join("jobs.trace");
    std::fs::write(&nodes_path, trace::write_nodes(&population)).unwrap();
    std::fs::write(&jobs_path, trace::write_jobs(&jobs)).unwrap();
    println!(
        "saved {} nodes -> {}\nsaved {} jobs  -> {}",
        population.len(),
        nodes_path.display(),
        jobs.len(),
        jobs_path.display()
    );

    // 3. Read back — bit-identical.
    let pop2 = trace::read_nodes(&std::fs::read_to_string(&nodes_path).unwrap()).unwrap();
    let jobs2 = trace::read_jobs(&std::fs::read_to_string(&jobs_path).unwrap()).unwrap();
    assert_eq!(pop2, population);
    assert_eq!(jobs2, jobs);
    println!("round-trip: traces parse back bit-identically");

    // 4. Replay the pinned workload through can-het.
    let layout = DimensionLayout::with_dims(11);
    let mut grid = StaticGrid::build(layout, pop2, 99);
    let mut matchmaker = PushingMatchmaker::heterogeneous(&grid, PushParams::default());
    let result = run_trace(
        &mut grid,
        &mut matchmaker,
        &jobs2,
        60.0,
        99,
        SchedulerChoice::CanHet,
    );
    let cdf = result.cdf();
    println!(
        "replayed under can-het: {:.1}% zero-wait, mean wait {:.1}s, p99 {:.1}s",
        100.0 * cdf.fraction_zero(),
        result.mean_wait(),
        cdf.quantile(0.99)
    );
}
