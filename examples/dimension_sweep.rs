//! Maintenance-cost scaling with CAN dimensionality (the paper's §IV-A
//! analysis behind Figure 8): supporting more heterogeneous CE types
//! means more CAN dimensions, and with the original (vanilla) protocol
//! the heartbeat *volume* grows ~O(d²) while compact/adaptive keep it
//! near O(d).
//!
//! Run with: `cargo run --release --example dimension_sweep`

use p2p_ce_grid::prelude::*;

fn main() {
    let nodes = 150;
    println!(
        "sweeping CAN dimensions 5 -> 14 (CPU-only grid up to 3 GPU families),\n\
         {nodes} nodes, slow churn, measuring heartbeat traffic per node per minute\n"
    );
    println!(
        "{:>4} | {:>14} {:>14} {:>14} | {:>10} {:>10} {:>10}",
        "dims", "Vanilla KB/min", "Compact KB/min", "Adaptive KB/min", "V msgs", "C msgs", "A msgs"
    );
    for dims in [5usize, 8, 11, 14] {
        let mut kb = Vec::new();
        let mut msgs = Vec::new();
        for scheme in HeartbeatScheme::ALL {
            let mut cfg = ChurnConfig::new(dims, scheme, nodes);
            cfg.event_gap = 2.0 * cfg.heartbeat_period;
            cfg.stage2_duration = 1200.0;
            cfg.sample_interval = 1200.0;
            let r = run_churn(&cfg, uniform_coords(dims));
            kb.push(r.kb_per_node_min);
            msgs.push(r.msgs_per_node_min);
        }
        println!(
            "{:>4} | {:>14.1} {:>14.1} {:>14.1} | {:>10.1} {:>10.1} {:>10.1}",
            dims, kb[0], kb[1], kb[2], msgs[0], msgs[1], msgs[2]
        );
    }
    println!(
        "\nMessage *counts* stay scheme-independent (one heartbeat per neighbor),\n\
         but vanilla's per-message size carries the whole O(d)-sized neighbor\n\
         table to O(d) neighbors — the O(d²) volume compact heartbeats avoid."
    );
}
