//! Failure resilience under churn (the paper's §IV / Figure 7 story):
//! run the same high-churn workload under the three heartbeat schemes
//! and watch broken links accumulate — vanilla repairs through
//! redundancy, compact saves bytes but loses repair ability, adaptive
//! recovers most of it with on-demand full updates.
//!
//! Run with: `cargo run --release --example churn_resilience`

use p2p_ce_grid::prelude::*;

fn main() {
    let nodes = 200;
    println!(
        "11-dimensional CAN, {nodes} initial nodes, churn event every 10s\n\
         (several events per 60s heartbeat period = the paper's high-churn regime)\n"
    );
    let mut reports = Vec::new();
    for scheme in HeartbeatScheme::ALL {
        let mut cfg = ChurnConfig::new(11, scheme, nodes).high_churn();
        cfg.stage2_duration = 5000.0;
        cfg.sample_interval = 500.0;
        reports.push(run_churn(&cfg, uniform_coords(11)));
    }

    println!("broken links over time:");
    println!(
        "{:>8} {:>9} {:>9} {:>9}",
        "t(s)", "Vanilla", "Compact", "Adaptive"
    );
    let len = reports.iter().map(|r| r.broken_series.len()).min().unwrap();
    for i in 0..len {
        print!("{:>8.0}", reports[0].broken_series[i].time);
        for r in &reports {
            print!(" {:>9}", r.broken_series[i].broken_links);
        }
        println!();
    }

    println!("\nsteady state and protocol cost:");
    for r in &reports {
        println!(
            "  {:>8}: {:6.1} broken links, {:8.1} KB/node/min heartbeat volume, {} on-demand full-update rounds",
            r.scheme.label(),
            r.steady_broken_links(),
            r.kb_per_node_min,
            r.full_update_rounds,
        );
    }
    println!(
        "\nAdaptive pays nearly compact's (low) cost while staying far closer to\n\
         vanilla's resilience — the paper's §IV-C trade-off."
    );
}
