//! Quickstart: build a small heterogeneous P2P grid, submit a stream of
//! jobs, and compare the paper's decentralized matchmaker (can-het)
//! with the centralized baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use p2p_ce_grid::prelude::*;

fn main() {
    // The paper's default scenario is 1000 nodes / 20 000 jobs on an
    // 11-dimensional CAN; scale it down 10x for a quick demo while
    // keeping the same load level.
    let mut scenario = default_scenario().scaled_down(10);
    scenario.jobs = 2000;
    println!(
        "grid: {} heterogeneous nodes ({} CAN dimensions, up to {} GPU families)",
        scenario.nodes,
        scenario.dims,
        scenario.gpu_slots()
    );
    println!(
        "workload: {} jobs, Poisson arrivals every {:.0}s on average, constraint ratio {:.0}%\n",
        scenario.jobs,
        scenario.job_gen.mean_interarrival,
        100.0 * scenario.job_gen.constraint_ratio
    );

    for choice in SchedulerChoice::ALL {
        let result = run_load_balance(&scenario, choice);
        let cdf = result.cdf();
        println!(
            "{:>8}: {:5.1}% of jobs started instantly; mean wait {:7.1}s; p99 wait {:8.1}s",
            choice.label(),
            100.0 * cdf.fraction_zero(),
            result.mean_wait(),
            cdf.quantile(0.99),
        );
    }

    println!(
        "\nThe decentralized heterogeneity-aware matchmaker (can-het) tracks the\n\
         centralized scheduler with perfect information, while the CE-oblivious\n\
         prior scheme (can-hom) falls behind — the paper's headline result."
    );
}
