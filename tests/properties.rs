//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

use p2p_ce_grid::can::geom::Zone;
use p2p_ce_grid::can::split_tree::SplitTree;
use p2p_ce_grid::prelude::*;
use p2p_ce_grid::sched::{
    bounded_queue_violation, retry_storm_violation, run_load_balance_overload, AiGrouping, AiTable,
    OverloadConfig, StaticGrid, TokenBucket,
};
use p2p_ce_grid::simcore::shard::{canonical_sort, CrossMsg, RegionPartition, ShardAssignment};
use proptest::prelude::*;

fn unit_point(dims: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..0.999, dims)
}

proptest! {
    /// Splitting a zone partitions it: every point lands in exactly one
    /// half, and volumes add up.
    #[test]
    fn zone_split_partitions(
        p in unit_point(4),
        dim in 0usize..4,
        at in 0.05f64..0.95,
    ) {
        let z = Zone::unit(4);
        let (lo, hi) = z.split(dim, at);
        prop_assert!((lo.volume() + hi.volume() - z.volume()).abs() < 1e-12);
        prop_assert_eq!(lo.contains(&p) as u8 + hi.contains(&p) as u8, 1);
        prop_assert_eq!(lo.merge(&hi), Some(z));
    }

    /// Zone abutment is symmetric and never holds for overlapping or
    /// identical zones.
    #[test]
    fn zone_abutment_symmetry(
        a_lo in unit_point(3),
        b_lo in unit_point(3),
        side in 0.05f64..0.4,
    ) {
        let mk = |lo: &[f64]| {
            Zone::from_bounds(
                lo.to_vec(),
                lo.iter().map(|x| x + side).collect(),
            )
        };
        let a = mk(&a_lo);
        let b = mk(&b_lo);
        prop_assert_eq!(a.abuts(&b), b.abuts(&a));
        prop_assert!(!a.abuts(&a), "a zone never abuts itself");
    }

    /// The split tree keeps zones partitioning the space and ownership
    /// lookups consistent through arbitrary join/leave sequences.
    #[test]
    fn split_tree_partition_under_churn(ops in prop::collection::vec((unit_point(3), any::<bool>()), 1..60)) {
        let mut tree = SplitTree::new(3, NodeId(0));
        let mut coords = vec![(NodeId(0), vec![0.01, 0.01, 0.01])];
        let mut next = 1u32;
        for (p, join) in ops {
            if join || tree.len() <= 1 {
                let host = tree.owner_at(&p).unwrap();
                let hc = coords.iter().find(|(n, _)| *n == host).unwrap().1.clone();
                let zone = tree.zone(host).clone();
                let plane = if zone.contains(&hc) {
                    p2p_ce_grid::can::split_tree::choose_split_plane(&zone, &hc, &p)
                } else {
                    Some(p2p_ce_grid::can::split_tree::choose_split_plane_free(&zone))
                };
                if let Some((dim, at)) = plane {
                    let id = NodeId(next);
                    next += 1;
                    tree.split(host, &hc, id, &p, dim, at);
                    coords.push((id, p));
                }
            } else {
                let victim = tree.members().min().unwrap();
                tree.remove(victim);
                coords.retain(|(n, _)| *n != victim);
            }
            tree.check_invariants();
        }
        // Ownership is total: every probe point has exactly one owner.
        let probe = vec![0.37, 0.91, 0.12];
        prop_assert!(tree.owner_at(&probe).is_some());
    }

    /// A generated job is satisfied by a node if and only if the
    /// node's coordinate dominates the job's coordinate on every real
    /// dimension (the CAN-routing correctness property of §II-B).
    #[test]
    fn satisfaction_matches_coordinate_dominance(node_seed in 0u64..5000, job_seed in 0u64..5000) {
        let layout = DimensionLayout::with_dims(11);
        let mut nrng = SimRng::seed_from_u64(node_seed);
        let mut jrng = SimRng::seed_from_u64(job_seed);
        let node = NodeGenConfig::paper_defaults(2).sample(&mut nrng);
        let job = JobGenConfig::paper_defaults(2, 0.7, 3.0).sample(JobId(0), &mut jrng);
        let nc = layout.node_coord(&node, 0.5);
        let jc = layout.job_coord(&job, 0.5);
        let dominates = (0..layout.dims())
            .filter(|&d| d != DimensionLayout::VIRTUAL_DIM)
            .all(|d| nc[d] >= jc[d]);
        prop_assert_eq!(
            job.satisfied_by(&node),
            dominates,
            "node {:?} vs job {:?}",
            node,
            job
        );
    }

    /// Event queue pops are globally time-ordered regardless of the
    /// scheduling order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(*t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// CDF quantile and fraction_at are inverse-consistent.
    #[test]
    fn cdf_quantile_consistency(samples in prop::collection::vec(0.0f64..1e5, 1..200), q in 0.01f64..1.0) {
        let cdf = Cdf::new(samples);
        let x = cdf.quantile(q);
        prop_assert!(cdf.fraction_at(x) >= q - 1e-9);
    }

    /// A retry token bucket never holds more than its burst capacity
    /// and never grants more takes than burst + refill x elapsed time,
    /// whatever the spacing of the attempts.
    #[test]
    fn token_bucket_never_exceeds_burst(
        burst in 1u32..10,
        refill in 0.0f64..2.0,
        deltas in prop::collection::vec(0.0f64..100.0, 1..60),
    ) {
        let mut tb = TokenBucket::new(burst, refill);
        let mut now = 0.0;
        let mut takes = 0u32;
        for d in deltas {
            now += d;
            if tb.try_take(now) {
                takes += 1;
            }
            prop_assert!(tb.available() <= f64::from(burst) + 1e-9);
        }
        prop_assert!(
            f64::from(takes) <= f64::from(burst) + refill * now + 1.0,
            "{takes} takes with burst {burst}, refill {refill}, elapsed {now}"
        );
    }

    /// The zone-region shard partitioner is an exact cover of the unit
    /// torus: the regions tile `[0,1)^d` (volumes sum to one and every
    /// point lies in exactly one region, agreeing with `shard_of`), and
    /// repartitioning after churn never orphans or double-assigns a
    /// surviving node.
    #[test]
    fn region_partition_is_an_exact_cover(
        dims in 1usize..6,
        shards in 1usize..17,
        points in prop::collection::vec(unit_point(5), 1..40),
        survivors in prop::collection::vec(any::<bool>(), 40),
    ) {
        let part = RegionPartition::new(dims, shards);
        let total: f64 = part.regions().iter().map(|r| r.volume()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "regions must tile the torus, got volume {total}");
        for p in &points {
            let p = &p[..dims];
            let owner = part.shard_of(p);
            let hits = part.regions().iter().filter(|r| r.contains(p)).count();
            prop_assert_eq!(hits, 1, "point {:?} lies in {} regions", p, hits);
            prop_assert!(
                part.regions()[owner].contains(p),
                "shard_of disagrees with region membership for {:?}", p
            );
        }
        // Churn repartitioning: the node set before and after a crash
        // wave maps onto the same fixed tiling; both assignments must
        // place every (surviving) node in exactly one member list,
        // consistent with lane_of.
        let coords: Vec<&[f64]> = points.iter().map(|p| &p[..dims]).collect();
        let alive: Vec<&[f64]> = coords
            .iter()
            .zip(&survivors)
            .filter(|(_, keep)| **keep)
            .map(|(c, _)| *c)
            .collect();
        for set in [&coords[..], &alive[..]] {
            let asg = ShardAssignment::from_fn(shards, set.len(), |i| part.shard_of(set[i]));
            let mut seen = vec![0usize; set.len()];
            for (s, members) in asg.members.iter().enumerate() {
                for &i in members {
                    seen[i] += 1;
                    prop_assert_eq!(asg.lane_of[i], s, "member list and lane_of disagree");
                }
            }
            prop_assert!(
                seen.iter().all(|&c| c == 1),
                "a node was orphaned or double-assigned: {:?}", seen
            );
        }
    }

    /// Window-barrier delivery is schedule-independent: whatever order
    /// cross-shard messages arrive in at a barrier (any permutation of
    /// the lane drain order), the canonical `(time, src lane, src seq)`
    /// sort applies them in the same order, bit for bit.
    #[test]
    fn barrier_canonical_order_is_permutation_invariant(
        raw in prop::collection::vec((0u32..200, 0usize..6, 0usize..6, 0u32..1_000_000), 1..80),
        shuffle_seed in 0u64..10_000,
    ) {
        // Emit messages exactly as lanes do: the sequence number is
        // unique per source lane, so the canonical key is total.
        let mut next_seq = [0u64; 6];
        let mut msgs: Vec<CrossMsg<u32>> = raw
            .iter()
            .map(|&(t, src, dst, event)| {
                let src_seq = next_seq[src];
                next_seq[src] += 1;
                CrossMsg { time: f64::from(t) * 0.5, dst, src, src_seq, event }
            })
            .collect();
        let mut canonical = msgs.clone();
        canonical_sort(&mut canonical);
        let mut rng = SimRng::seed_from_u64(shuffle_seed);
        for round in 0..3 {
            for i in (1..msgs.len()).rev() {
                let j = rng.below(i + 1);
                msgs.swap(i, j);
            }
            let mut sorted = msgs.clone();
            canonical_sort(&mut sorted);
            prop_assert_eq!(&sorted, &canonical, "permutation {} reordered the apply", round);
        }
    }

    /// Summary::merge is equivalent to sequential accumulation.
    #[test]
    fn summary_merge_associative(xs in prop::collection::vec(-1e3f64..1e3, 2..100), split in 1usize..99) {
        let split = split.min(xs.len() - 1);
        let whole = Summary::from_iter(xs.iter().copied());
        let mut a = Summary::from_iter(xs[..split].iter().copied());
        let b = Summary::from_iter(xs[split..].iter().copied());
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated population builds a valid static grid whose zones
    /// partition the space and contain their owners' coordinates, and
    /// routing always finds the owner.
    #[test]
    fn static_grid_builds_from_any_population(seed in 0u64..1000, n in 10usize..80) {
        let layout = DimensionLayout::with_dims(8);
        let pop = generate_nodes(&NodeGenConfig::paper_defaults(1), n, seed);
        let grid = StaticGrid::build(layout, pop, seed);
        grid.check_invariants();
        let mut rng = SimRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..5 {
            let p: Vec<f64> = (0..8).map(|_| rng.unit() * 0.99).collect();
            let r = grid.route_to(NodeId(0), &p);
            prop_assert_eq!(r.owner, grid.owner_at(&p));
        }
    }

    /// After a randomized crash episode the self-healing (adaptive)
    /// scheme restores every node's boundary coverage and all
    /// ground-truth links within a bounded number of heartbeat
    /// periods — the chaos harness's own invariant checker must report
    /// a clean run for any fault seed.
    #[test]
    fn adaptive_recovers_full_coverage_after_random_crashes(
        seed in 0u64..500,
        crashes in 3u32..12,
        rejoins in 0u32..6,
    ) {
        use p2p_ce_grid::simcore::fault::{FaultPlan, NodeFault};
        let mut cfg = ChaosConfig::new("prop-crashes", HeartbeatScheme::Adaptive, seed);
        cfg.initial_nodes = 36;
        cfg.settle_time = 120.0;
        cfg.plan = FaultPlan::new(seed)
            .with(60.0, NodeFault::Crash { count: crashes as usize })
            .with(400.0, NodeFault::Rejoin { count: rejoins as usize });
        let report = run_chaos(&cfg);
        prop_assert!(
            report.violations.is_empty(),
            "seed {}: {:?}", seed, report.violations
        );
        prop_assert_eq!(report.broken_after, 0);
        prop_assert_eq!(report.gaps_after, 0);
        // Recovery must happen within the harness's bounded recovery
        // window (recovery_periods heartbeat periods).
        prop_assert!(report.recovery_time.is_some());
    }

    /// Every registered scenario compiles deterministically: the same
    /// (name, seed) pair yields byte-identical trace text (before and
    /// after macro expansion), and distinct seeds perturb only the
    /// RNG-derived expansion times — never the macro structure, the
    /// primitive event kinds/counts, or the degrade windows.
    #[test]
    fn scenario_compilation_is_deterministic_and_structurally_stable(
        idx in 0usize..64,
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
    ) {
        use p2p_ce_grid::scenarios::REGISTRY;
        let spec = &REGISTRY[idx % REGISTRY.len()];
        let a1 = spec.compile(seed_a);
        let a2 = spec.compile(seed_a);
        prop_assert_eq!(a1.to_text(), a2.to_text(), "{}: compile must be pure", spec.name);
        prop_assert_eq!(
            a1.expand().to_text(),
            a2.expand().to_text(),
            "{}: expansion must be pure", spec.name
        );
        let b = spec.compile(seed_b);
        prop_assert_eq!(&a1.macros, &b.macros, "{}: macro structure is seed-invariant", spec.name);
        let ea = a1.expand();
        let eb = b.expand();
        prop_assert_eq!(ea.events.len(), eb.events.len(), "{}", spec.name);
        for (x, y) in ea.events.iter().zip(&eb.events) {
            // Only the firing times may differ between seeds.
            prop_assert_eq!(&x.fault, &y.fault, "{}: event kinds/counts are structural", spec.name);
        }
        prop_assert_eq!(&ea.degrades, &eb.degrades, "{}: degrade windows are structural", spec.name);
    }

    /// Shed decisions are deterministic for a fixed seed, jobs stay
    /// conserved under admission control, and both overload oracles
    /// hold for any (slots, burst) bound at 4x offered load.
    #[test]
    fn overload_shedding_is_deterministic_and_conserves_jobs(
        seed in 0u64..500,
        slots in 1usize..6,
        burst in 1u32..5,
    ) {
        let mut s = default_scenario().scaled_down(20); // 50 nodes
        s.jobs = 300;
        s.seed = seed;
        let over = s.clone().with_interarrival(s.job_gen.mean_interarrival / 4.0);
        let cfg = OverloadConfig {
            queue_slots: Some(slots),
            max_queue_wait: Some(600.0),
            retry_burst: burst,
            ..OverloadConfig::default()
        };
        let a = run_load_balance_overload(&over, SchedulerChoice::CanHet, None, &cfg);
        let b = run_load_balance_overload(&over, SchedulerChoice::CanHet, None, &cfg);
        let sa = a.overload.clone().expect("armed run reports stats");
        let sb = b.overload.clone().expect("armed run reports stats");
        prop_assert_eq!(&sa, &sb, "shed decisions must replay identically");
        prop_assert_eq!(a.wait_times.len(), b.wait_times.len());
        prop_assert_eq!(
            a.wait_times.len() as u64 + sa.shed_total() + a.lost_jobs,
            over.jobs as u64,
            "every job completes, sheds, or is accounted lost"
        );
        prop_assert!(bounded_queue_violation(&sa, &cfg).is_none());
        prop_assert!(retry_storm_violation(&sa, &cfg, a.makespan).is_none());
    }

    /// Incremental AiTable refresh stays bit-identical to a scratch
    /// rebuild with the queue-pressure bit armed, through arbitrary
    /// queue churn.
    #[test]
    fn pressure_armed_incremental_refresh_matches_scratch(
        seed in 0u64..500,
        bound in 1usize..5,
        n in 20usize..60,
    ) {
        let layout = DimensionLayout::with_dims(8);
        let pop = generate_nodes(&NodeGenConfig::paper_defaults(1), n, seed);
        let mut stream = JobStream::with_population(
            JobGenConfig::paper_defaults(1, 0.6, 3.0),
            seed,
            pop.clone(),
        );
        let mut grid = StaticGrid::build(layout, pop, seed);
        let mut inc = AiTable::new(&grid, AiGrouping::PerCe);
        let mut scr = AiTable::new(&grid, AiGrouping::PerCe);
        inc.set_pressure_bound(Some(bound));
        scr.set_pressure_bound(Some(bound));
        let mut rng = SimRng::seed_from_u64(seed ^ 0x77);
        for round in 0..6u64 {
            for _ in 0..8 {
                let (_, job) = stream.next_job();
                let target = (0..16)
                    .map(|_| NodeId(rng.below(n) as u32))
                    .find(|&t| job.satisfied_by(&grid.runtime(t).spec));
                if let Some(t) = target {
                    grid.with_runtime_mut(t, |rt| {
                        rt.enqueue(job, round as f64);
                        rt.start_ready()
                    });
                }
            }
            let now = round as f64;
            inc.refresh(&grid, now);
            scr.refresh_scratch(&grid, now);
            for i in 0..n {
                let id = NodeId(i as u32);
                prop_assert_eq!(
                    inc.local_bits(id),
                    scr.local_bits(id),
                    "round {}: node {} bits diverged", round, i
                );
            }
        }
    }

    /// Under randomized fail-stop node crashes, no job is ever lost or
    /// double-completed: every submitted job either completes exactly
    /// once or is explicitly accounted as permanently failed after
    /// bounded retries. (The conservation ledger inside the simulator
    /// panics on any violation; the counts must also reconcile.)
    #[test]
    fn crash_recovery_conserves_every_job(
        seed in 0u64..1000,
        mean_interval in 200.0f64..2000.0,
    ) {
        let mut s = default_scenario().scaled_down(20); // 50 nodes
        s.jobs = 300;
        s.seed = seed;
        let chaos = CrashChaosConfig::new(mean_interval);
        let r = run_load_balance_chaos(&s, SchedulerChoice::CanHet, &chaos);
        let rec = r.recovery.as_ref().expect("chaos run reports stats");
        prop_assert_eq!(
            r.wait_times.len() as u64 + rec.permanently_failed,
            s.jobs as u64,
            "every job completes once or is accounted failed"
        );
        prop_assert!(r.wait_times.iter().all(|w| w.is_finite() && *w >= 0.0));
        prop_assert!(rec.requeued >= rec.jobs_lost().saturating_sub(rec.permanently_failed));
    }
}
