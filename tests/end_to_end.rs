//! End-to-end integration: the full pipeline from workload generation
//! through CAN construction, matchmaking, execution, and metrics.

use p2p_ce_grid::prelude::*;

fn quick_scenario() -> LoadBalanceScenario {
    let mut s = default_scenario().scaled_down(10); // 100 nodes
    s.jobs = 1500;
    s
}

#[test]
fn every_scheduler_completes_the_workload() {
    let s = quick_scenario();
    for choice in SchedulerChoice::ALL {
        let r = run_load_balance(&s, choice);
        assert_eq!(r.wait_times.len(), s.jobs, "{}", choice.label());
        assert!(
            r.wait_times.iter().all(|w| w.is_finite() && *w >= 0.0),
            "{}: invalid wait times",
            choice.label()
        );
        assert!(r.makespan > 0.0);
    }
}

#[test]
fn simulations_are_reproducible_across_runs() {
    let s = quick_scenario();
    for choice in SchedulerChoice::ALL {
        let a = run_load_balance(&s, choice);
        let b = run_load_balance(&s, choice);
        assert_eq!(a.wait_times, b.wait_times, "{}", choice.label());
        assert_eq!(a.fallback_placements, b.fallback_placements);
    }
}

#[test]
fn different_seeds_give_different_workloads() {
    let s = quick_scenario();
    let a = run_load_balance(&s, SchedulerChoice::Central);
    let b = run_load_balance(&s.clone().with_seed(999), SchedulerChoice::Central);
    assert_ne!(a.wait_times, b.wait_times);
}

#[test]
fn heavier_load_never_improves_waits() {
    // Mean wait should not decrease when jobs arrive faster.
    let light = quick_scenario().with_interarrival(60.0);
    let heavy = quick_scenario().with_interarrival(20.0);
    for choice in SchedulerChoice::ALL {
        let l = run_load_balance(&light, choice);
        let h = run_load_balance(&heavy, choice);
        assert!(
            h.mean_wait() >= l.mean_wait() * 0.9,
            "{}: heavy {} < light {}",
            choice.label(),
            h.mean_wait(),
            l.mean_wait()
        );
    }
}

#[test]
fn tighter_constraints_never_improve_waits() {
    let loose = quick_scenario().with_constraint_ratio(0.2);
    let tight = quick_scenario().with_constraint_ratio(0.9);
    for choice in SchedulerChoice::ALL {
        let l = run_load_balance(&loose, choice);
        let t = run_load_balance(&tight, choice);
        assert!(
            t.mean_wait() >= l.mean_wait() * 0.9,
            "{}: tight {} < loose {}",
            choice.label(),
            t.mean_wait(),
            l.mean_wait()
        );
    }
}

#[test]
fn cdf_of_results_is_well_formed() {
    let r = run_load_balance(&quick_scenario(), SchedulerChoice::CanHet);
    let cdf = r.cdf();
    assert_eq!(cdf.len(), 1500);
    assert!(cdf.fraction_zero() > 0.0, "some jobs start instantly");
    let curve = cdf.curve(cdf.max().unwrap().max(1.0), 50);
    for w in curve.windows(2) {
        assert!(w[1].1 >= w[0].1, "CDF must be monotone");
    }
    assert!((curve.last().unwrap().1 - 100.0).abs() < 1e-9);
}

#[test]
fn ablations_run_and_full_features_win_or_tie() {
    let s = quick_scenario();
    let full = run_load_balance_ablated(&s, HetFeatures::all());
    let crippled = run_load_balance_ablated(
        &s,
        HetFeatures {
            acceptable_nodes: false,
            dominant_ce: false,
            per_ce_ai: false,
        },
    );
    // The full algorithm should not be substantially worse than the
    // fully-ablated variant.
    assert!(
        full.mean_wait() <= crippled.mean_wait() * 1.2 + 60.0,
        "full {} vs crippled {}",
        full.mean_wait(),
        crippled.mean_wait()
    );
}
