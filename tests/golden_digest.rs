//! Golden-digest equivalence tests: a 64-bit FNV-1a fingerprint over
//! every behavior-bearing output of the load-balance simulation
//! (per-job wait times, final placements, route-hop and push summaries,
//! churn counters), at quick scale, for all three schedulers, with and
//! without eviction.
//!
//! The recorded constants pin the simulation's *exact* trajectory: any
//! hot-path optimization (CSR adjacency, scratch buffers, precomputed
//! tables) that changes matchmaking decisions — even by reordering a
//! tie-break — fails these tests loudly. Determinism is load-bearing
//! for the reproduction, so digests may only be re-recorded for a
//! change that is *supposed* to alter results (e.g. a model fix), never
//! for a refactor.
//!
//! To re-record after such a change:
//! `PGRID_PRINT_DIGESTS=1 cargo test --test golden_digest -- --nocapture`

use p2p_ce_grid::prelude::*;

/// 64-bit FNV-1a.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Digests every behavior-bearing field of a simulation result.
fn digest(r: &SimResult) -> u64 {
    let mut h = Fnv::new();
    h.u64(r.wait_times.len() as u64);
    for &w in &r.wait_times {
        h.f64(w);
    }
    for &n in &r.placed_nodes {
        h.u64(n.0 as u64);
    }
    h.u64(r.route_hops.count());
    h.f64(r.route_hops.mean());
    h.f64(r.route_hops.max().unwrap_or(-1.0));
    h.u64(r.pushes.count());
    h.f64(r.pushes.mean());
    h.f64(r.pushes.max().unwrap_or(-1.0));
    h.u64(r.fallback_placements);
    h.f64(r.makespan);
    h.u64(r.evictions);
    h.u64(r.resubmissions);
    for &b in &r.node_busy_seconds {
        h.f64(b);
    }
    h.0
}

fn quick_scenario() -> LoadBalanceScenario {
    let mut s = default_scenario().scaled_down(10); // 100 nodes
    s.jobs = 600;
    s
}

fn check(label: &str, expected: u64, r: &SimResult) {
    let got = digest(r);
    if std::env::var_os("PGRID_PRINT_DIGESTS").is_some() {
        println!("(\"{label}\", 0x{got:016x}),");
        return;
    }
    assert_eq!(
        got, expected,
        "{label}: digest 0x{got:016x} != recorded 0x{expected:016x} — \
         the simulation trajectory changed; see file header"
    );
}

const NO_EVICTION: [(&str, u64); 3] = [
    ("can-het", 0xf2d13c481f061b02),
    ("can-hom", 0x4c09d255f21bc163),
    ("central", 0xbc400b2d6f3c8d4a),
];

const WITH_EVICTION: [(&str, u64); 3] = [
    ("can-het+evict", 0x53f2a6ebefd6a08d),
    ("can-hom+evict", 0x38af4f86b7b6cc14),
    ("central+evict", 0x6a5e95231b6dc29b),
];

#[test]
fn golden_digests_without_eviction() {
    let s = quick_scenario();
    for (choice, (label, expected)) in SchedulerChoice::ALL.into_iter().zip(NO_EVICTION) {
        let r = run_load_balance(&s, choice);
        check(label, expected, &r);
    }
}

#[test]
fn golden_digests_with_eviction() {
    let s = quick_scenario().with_eviction(EvictionConfig::new(900.0));
    for (choice, (label, expected)) in SchedulerChoice::ALL.into_iter().zip(WITH_EVICTION) {
        let r = run_load_balance(&s, choice);
        check(label, expected, &r);
    }
}

/// Refresh-heavy digests: the AI table is refreshed 4× as often (15 s
/// period vs the default 60 s) under eviction churn, so the
/// incremental `AiTable::refresh` fast path runs many more times per
/// trajectory, most of them over sparse dirty sets. Recorded with the
/// from-scratch rebuild *before* the incremental path landed; the
/// incremental path must reproduce them bit-exactly (its recompute
/// builds every f64 sum by the same `absorb` sequence in the same
/// order, so any divergence is a real behavior change).
const REFRESH_HEAVY: [(&str, u64); 3] = [
    ("can-het+fast-ai", 0x2178d2ea890a3142),
    ("can-hom+fast-ai", 0x05830d3374b924a9),
    ("central+fast-ai", 0x9c925b1212f5d140),
];

#[test]
fn golden_digests_refresh_heavy() {
    let mut s = quick_scenario().with_eviction(EvictionConfig::new(900.0));
    s.ai_refresh_period = 15.0;
    // Double the arrival rate so queues build up and the aggregated
    // entries carry non-trivial load (a light grid's AI is near-static
    // and would under-exercise the incremental propagation).
    s.job_gen.mean_interarrival /= 2.0;
    for (choice, (label, expected)) in SchedulerChoice::ALL.into_iter().zip(REFRESH_HEAVY) {
        let r = run_load_balance(&s, choice);
        check(label, expected, &r);
    }
}

#[test]
fn digest_is_sensitive_to_results() {
    let r = run_load_balance(&quick_scenario(), SchedulerChoice::Central);
    let mut tweaked = r.clone();
    tweaked.wait_times[0] += 1.0;
    assert_ne!(digest(&r), digest(&tweaked));
    let mut tweaked = r.clone();
    tweaked.placed_nodes[0] = NodeId(tweaked.placed_nodes[0].0.wrapping_add(1));
    assert_ne!(digest(&r), digest(&tweaked));
}
