//! Differential harness for the incremental `AiTable::refresh`.
//!
//! Drives a long random job stream (placements, completions, volunteer
//! evictions, restores) through a static grid and, after **every**
//! event, compares the incrementally-refreshed table against a
//! from-scratch rebuild on a shadow table — every entry, every
//! dimension, both the per-CE and pooled groupings, bit-exact
//! (`f64::to_bits`). Any divergence means the dirty-set propagation
//! skipped an entry it shouldn't have, or the recompute deviated from
//! the scratch build's `absorb` order.

use p2p_ce_grid::prelude::*;

/// Bit-exact entry comparison (the differential oracle).
fn entries_same(a: &AiEntry, b: &AiEntry) -> bool {
    a.nodes == b.nodes
        && a.free_nodes == b.free_nodes
        && a.cores.to_bits() == b.cores.to_bits()
        && a.required_cores.to_bits() == b.required_cores.to_bits()
}

/// Asserts `inc` (incremental) equals `scr` (scratch shadow) on every
/// `(node, dim, slot)` entry, bit for bit.
fn assert_tables_identical(inc: &AiTable, scr: &AiTable, n: usize, event: usize, label: &str) {
    assert_eq!(inc.slot_types(), scr.slot_types());
    for i in 0..n as u32 {
        for d in 0..inc.dims() {
            for s in 0..inc.slot_types().len() {
                let a = inc.entry_at(NodeId(i), d, s);
                let b = scr.entry_at(NodeId(i), d, s);
                assert!(
                    entries_same(a, b),
                    "{label} event {event}: node {i} dim {d} slot {s}: \
                     incremental {a:?} != scratch {b:?}"
                );
            }
        }
    }
}

struct Harness {
    grid: StaticGrid,
    stream: JobStream,
    /// `(node, job)` pairs currently *running* (started, not merely
    /// queued) — the only jobs `NodeRuntime::finish` accepts.
    running: Vec<(NodeId, JobId)>,
    evicted: Vec<NodeId>,
    rng: SimRng,
}

impl Harness {
    fn new(n: usize, seed: u64) -> Self {
        let layout = DimensionLayout::with_dims(11);
        let pop = generate_nodes(&NodeGenConfig::paper_defaults(2), n, seed);
        let jobcfg = JobGenConfig::paper_defaults(2, 0.6, 3.0);
        let stream = JobStream::with_population(jobcfg, seed, pop.clone());
        let grid = StaticGrid::build(layout, pop, seed);
        Harness {
            grid,
            stream,
            running: Vec::new(),
            evicted: Vec::new(),
            rng: SimRng::seed_from_u64(seed ^ 0xD1FF),
        }
    }

    /// Applies one random load-mutating event; returns a short label.
    fn step(&mut self) -> &'static str {
        let n = self.grid.len();
        match self.rng.below(10) {
            // Evictions and restores are rarer than job churn, like in
            // the simulator's eviction model.
            0 => {
                let victim = NodeId(self.rng.below(n) as u32);
                self.grid.evict_node(victim);
                self.running.retain(|&(node, _)| node != victim);
                if !self.evicted.contains(&victim) {
                    self.evicted.push(victim);
                }
                "evict"
            }
            1 => {
                if let Some(&back) = self.evicted.last() {
                    self.evicted.pop();
                    self.grid.restore_node(back);
                    let started = self.grid.with_runtime_mut(back, |rt| rt.start_ready());
                    self.running
                        .extend(started.into_iter().map(|s| (back, s.job.id)));
                }
                "restore"
            }
            2..=3 => {
                // Complete a random running job.
                if !self.running.is_empty() {
                    let k = self.rng.below(self.running.len());
                    let (node, jid) = self.running.swap_remove(k);
                    let started = self.grid.with_runtime_mut(node, |rt| {
                        rt.finish(jid);
                        rt.start_ready()
                    });
                    self.running
                        .extend(started.into_iter().map(|s| (node, s.job.id)));
                }
                "complete"
            }
            _ => {
                // Place a job on a random satisfying node (the stream
                // only emits jobs satisfiable by someone in the
                // population).
                let (_, job) = self.stream.next_job();
                let target = (0..32)
                    .map(|_| NodeId(self.rng.below(n) as u32))
                    .find(|&t| job.satisfied_by(&self.grid.runtime(t).spec));
                if let Some(target) = target {
                    let started = self.grid.with_runtime_mut(target, |rt| {
                        rt.enqueue(job, 0.0);
                        rt.start_ready()
                    });
                    self.running
                        .extend(started.into_iter().map(|s| (target, s.job.id)));
                }
                "place"
            }
        }
    }
}

/// The headline test: 450 events, a refresh + full differential check
/// after every single one, for both groupings at once.
#[test]
fn incremental_refresh_is_bit_identical_to_scratch_after_every_event() {
    let n = 140;
    let mut h = Harness::new(n, 4242);
    let mut inc_per = AiTable::new(&h.grid, AiGrouping::PerCe);
    let mut scr_per = AiTable::new(&h.grid, AiGrouping::PerCe);
    let mut inc_pool = AiTable::new(&h.grid, AiGrouping::Pooled);
    let mut scr_pool = AiTable::new(&h.grid, AiGrouping::Pooled);
    for event in 0..450 {
        let label = h.step();
        let now = event as f64;
        inc_per.refresh(&h.grid, now);
        scr_per.refresh_scratch(&h.grid, now);
        inc_pool.refresh(&h.grid, now);
        scr_pool.refresh_scratch(&h.grid, now);
        assert_tables_identical(&inc_per, &scr_per, n, event, label);
        assert_tables_identical(&inc_pool, &scr_pool, n, event, label);
    }
    h.grid.check_invariants();
    assert!(
        h.grid.load_clock() > 400,
        "the stream must actually have mutated load state"
    );
}

/// Batched variant: several events accumulate in the dirty set before
/// each refresh, so the propagation front regularly covers multiple
/// seeds and overlapping regions.
#[test]
fn incremental_refresh_survives_batched_churn() {
    let n = 100;
    let mut h = Harness::new(n, 777);
    let mut inc = AiTable::new(&h.grid, AiGrouping::PerCe);
    let mut scr = AiTable::new(&h.grid, AiGrouping::PerCe);
    let mut event = 0;
    for round in 0..110 {
        let batch = 1 + (round % 7);
        for _ in 0..batch {
            h.step();
            event += 1;
        }
        let now = event as f64;
        inc.refresh(&h.grid, now);
        scr.refresh_scratch(&h.grid, now);
        assert_tables_identical(&inc, &scr, n, event, "batched");
    }
    assert!(event >= 400, "batched stream should cover 400+ events");
}
