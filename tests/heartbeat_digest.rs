//! Golden digests for the heartbeat hot path: fig7-shape churn runs
//! (fault-free, high churn) for all three heartbeat schemes, with the
//! failure detector off, fixed, and adaptive — nine trajectories in
//! all. Each digest folds the full broken-link series, the fig8
//! message-cost rates, the delivered-message count, and the final
//! observable simulator state (`CanSim::fold_observable_state`), so a
//! hot-path "optimization" that reorders a single message, skips one
//! delivery, or shifts one RNG draw fails loudly.
//!
//! These constants were originally recorded with the pre-optimization
//! delivery machinery (per-message fault fate, per-receiver payload
//! clones, uncached gap checks) specifically so the zero-cost dispatch
//! and batched-construction refactor could prove itself bit-identical.
//! Digests may only be re-recorded for a change that is *supposed* to
//! alter trajectories, never for a refactor. Last re-record: the
//! ghost-keepalive ping-back (a keepalive from an unknown sender now
//! earns a `ProbePing` so the sender re-announces its zone first-hand),
//! which legitimately shifts the compact and adaptive trajectories —
//! high churn briefly leaves one-way adopted records whose keepalive
//! streams now get answered. Vanilla, which never sends keepalives, is
//! the control: its digest did not move.
//!
//! To re-record after such a change:
//! `PGRID_PRINT_DIGESTS=1 cargo test --test heartbeat_digest -- --nocapture`

use p2p_ce_grid::prelude::*;

/// 64-bit FNV-1a.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Digests every behavior-bearing field of a churn report.
fn digest(r: &ChurnReport) -> u64 {
    let mut h = Fnv64::new();
    h.u64(r.dims as u64);
    h.u64(r.broken_series.len() as u64);
    for s in &r.broken_series {
        h.f64(s.time);
        h.u64(s.broken_links as u64);
        h.u64(s.nodes as u64);
    }
    h.f64(r.msgs_per_node_min);
    h.f64(r.kb_per_node_min);
    h.f64(r.mean_degree);
    h.u64(r.final_nodes as u64);
    h.u64(r.full_update_rounds);
    h.u64(r.repairs);
    h.u64(r.delivered_messages);
    h.u64(r.state_digest);
    h.0
}

/// The fig7 cell shape (11-dim CAN, high churn, fault-free) at test
/// scale: 48 nodes and a 1500 s measurement window keep the nine runs
/// inside a debug-build test budget while still exercising hundreds of
/// heartbeat rounds per scheme.
fn fig7_shape(scheme: HeartbeatScheme, detector: Option<DetectorConfig>) -> ChurnConfig {
    let mut cfg = ChurnConfig::new(11, scheme, 48).high_churn();
    cfg.stage2_duration = 1500.0;
    cfg.sample_interval = 250.0;
    cfg.detector = detector;
    cfg
}

fn check(label: &str, expected: u64, r: &ChurnReport) {
    let got = digest(r);
    if std::env::var_os("PGRID_PRINT_DIGESTS").is_some() {
        println!("(\"{label}\", 0x{got:016x}),");
        return;
    }
    assert_eq!(
        got, expected,
        "{label}: digest 0x{got:016x} != recorded 0x{expected:016x} — \
         the heartbeat trajectory changed; see file header"
    );
}

// The three tables are intentionally identical: in a *fault-free* run
// every departure is either graceful or a crash that reassigns its
// zone in ground truth immediately, so an armed detector never finds a
// silent-but-owning neighbor to suspect and must stay perfectly
// trajectory-neutral (no extra messages, no RNG draws). The armed
// variants pin exactly that neutrality — a refactor that makes the
// detector-armed tick path touch the RNG or reorder a message breaks
// the `+fixed`/`+adaptive` rows even though the detector never fires.
const NO_DETECTOR: [(&str, u64); 3] = [
    ("vanilla", 0x7b9152e37ac9760b),
    ("compact", 0x93a7770ba9d1b100),
    ("adaptive", 0x189865e134978a83),
];

const FIXED_DETECTOR: [(&str, u64); 3] = [
    ("vanilla+fixed", 0x7b9152e37ac9760b),
    ("compact+fixed", 0x93a7770ba9d1b100),
    ("adaptive+fixed", 0x189865e134978a83),
];

const ADAPTIVE_DETECTOR: [(&str, u64); 3] = [
    ("vanilla+adaptive", 0x7b9152e37ac9760b),
    ("compact+adaptive", 0x93a7770ba9d1b100),
    ("adaptive+adaptive", 0x189865e134978a83),
];

#[test]
fn heartbeat_digests_no_detector() {
    for (scheme, (label, expected)) in HeartbeatScheme::ALL.into_iter().zip(NO_DETECTOR) {
        let cfg = fig7_shape(scheme, None);
        let r = run_churn(&cfg, uniform_coords(cfg.dims));
        check(label, expected, &r);
    }
}

#[test]
fn heartbeat_digests_fixed_detector() {
    for (scheme, (label, expected)) in HeartbeatScheme::ALL.into_iter().zip(FIXED_DETECTOR) {
        let cfg = fig7_shape(scheme, Some(DetectorConfig::fixed()));
        let r = run_churn(&cfg, uniform_coords(cfg.dims));
        check(label, expected, &r);
    }
}

#[test]
fn heartbeat_digests_adaptive_detector() {
    for (scheme, (label, expected)) in HeartbeatScheme::ALL.into_iter().zip(ADAPTIVE_DETECTOR) {
        let cfg = fig7_shape(scheme, Some(DetectorConfig::adaptive()));
        let r = run_churn(&cfg, uniform_coords(cfg.dims));
        check(label, expected, &r);
    }
}

#[test]
fn digest_is_sensitive_to_results() {
    let cfg = fig7_shape(HeartbeatScheme::Compact, None);
    let r = run_churn(&cfg, uniform_coords(cfg.dims));
    let mut tweaked = r.clone();
    tweaked.delivered_messages += 1;
    assert_ne!(digest(&r), digest(&tweaked));
    let mut tweaked = r.clone();
    tweaked.state_digest ^= 1;
    assert_ne!(digest(&r), digest(&tweaked));
    assert!(
        !r.broken_series.is_empty(),
        "fig7 shape must produce a series"
    );
    let mut tweaked = r.clone();
    tweaked.broken_series[0].broken_links += 1;
    assert_ne!(digest(&r), digest(&tweaked));
}
