//! Analytic validation of the execution engine: a single-core node fed
//! Poisson arrivals with exponential service is an M/M/1 queue, whose
//! mean waiting time in queue is the textbook
//! `Wq = ρ/(1-ρ) · E[S]`. The simulator must reproduce it.
//!
//! This pins down the discrete-event core (arrivals, FIFO start/finish
//! bookkeeping, wait-time accounting) against closed-form theory rather
//! than against itself.

use p2p_ce_grid::prelude::*;
use p2p_ce_grid::sched::{run_trace, CentralMatchmaker, StaticGrid};
use p2p_ce_grid::types::DimensionLayout;

fn mm1_jobs(n: usize, lambda: f64, mu: f64, seed: u64) -> Vec<(f64, JobSpec)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += rng.exponential(1.0 / lambda);
            let service = rng.exponential(1.0 / mu).max(1e-6);
            let job = JobSpec::new(
                JobId(i as u32),
                vec![CeRequirement {
                    ce_type: CeType::CPU,
                    min_cores: Some(1),
                    ..Default::default()
                }],
                None,
                service,
            );
            (t, job)
        })
        .collect()
}

fn run_mm1(rho: f64, n: usize, seed: u64) -> (f64, f64) {
    // One single-core node at nominal clock 1.0 => service = runtime.
    let node = NodeSpec::cpu_only(1.0, 8.0, 1, 100.0);
    let layout = DimensionLayout::with_dims(5);
    let mu = 1.0 / 100.0; // mean service 100 s
    let lambda = rho * mu;
    let jobs = mm1_jobs(n, lambda, mu, seed);
    let mut grid = StaticGrid::build(layout, vec![node], seed);
    let mut mm = CentralMatchmaker;
    let result = run_trace(
        &mut grid,
        &mut mm,
        &jobs,
        1e9,
        seed,
        SchedulerChoice::Central,
    );
    let measured = result.mean_wait();
    let analytic = rho / (1.0 - rho) * (1.0 / mu);
    (measured, analytic)
}

#[test]
fn mm1_mean_wait_matches_theory_moderate_load() {
    let (measured, analytic) = run_mm1(0.5, 40_000, 7);
    // Wq = 0.5/0.5 * 100 = 100 s.
    let ratio = measured / analytic;
    assert!(
        (0.9..1.1).contains(&ratio),
        "M/M/1 rho=0.5: measured {measured:.1}s vs analytic {analytic:.1}s (ratio {ratio:.3})"
    );
}

#[test]
fn mm1_mean_wait_matches_theory_heavy_load() {
    let (measured, analytic) = run_mm1(0.8, 60_000, 11);
    // Wq = 0.8/0.2 * 100 = 400 s. Heavy traffic converges slowly;
    // allow a wider band.
    let ratio = measured / analytic;
    assert!(
        (0.8..1.2).contains(&ratio),
        "M/M/1 rho=0.8: measured {measured:.1}s vs analytic {analytic:.1}s (ratio {ratio:.3})"
    );
}

#[test]
fn mm1_light_load_is_nearly_waitless() {
    let (measured, analytic) = run_mm1(0.1, 20_000, 13);
    // Wq = 0.1/0.9 * 100 ≈ 11.1 s.
    assert!(
        (measured - analytic).abs() < 5.0,
        "M/M/1 rho=0.1: measured {measured:.1}s vs analytic {analytic:.1}s"
    );
}

/// A c-core node under per-core load ρ behaves like M/M/c; we don't
/// assert the exact Erlang-C value, but waits must drop far below the
/// M/M/1 level at the same per-core utilization (pooling effect) —
/// a direct check that multi-core sharing is simulated correctly.
#[test]
fn multicore_pooling_beats_single_core() {
    let layout = DimensionLayout::with_dims(5);
    let mu = 1.0 / 100.0;
    let rho = 0.7;
    let n = 40_000;

    // Single core at rho=0.7.
    let (single, _) = run_mm1(rho, n, 17);

    // Four cores, 4x the arrival rate (same per-core utilization).
    let node = NodeSpec::cpu_only(1.0, 8.0, 4, 100.0);
    let jobs = mm1_jobs(n, 4.0 * rho * mu, mu, 17);
    let mut grid = StaticGrid::build(layout, vec![node], 17);
    let mut mm = CentralMatchmaker;
    let result = run_trace(&mut grid, &mut mm, &jobs, 1e9, 17, SchedulerChoice::Central);
    let pooled = result.mean_wait();
    assert!(
        pooled < 0.6 * single,
        "M/M/4 pooling should cut waits: pooled {pooled:.1}s vs single {single:.1}s"
    );
}
