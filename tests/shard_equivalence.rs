//! Cross-shard-count equivalence suite: the sharded simulation engine
//! must be **bit-identical** to the sequential engine for every shard
//! count, across every execution stack.
//!
//! The matrix runs shards {1, 2, 4, 8} over:
//!
//! * the quick fig5 load-balance workload (all three schedulers, with
//!   and without eviction churn) through `run_load_balance_sharded`,
//! * fig7-style churn schedules under the vanilla and adaptive
//!   heartbeat schemes through `run_schedule_sharded` (the DST oracle
//!   observation plane partitioned by zone region),
//! * one generated chaos schedule (sched crash phase armed) and one
//!   overload-armed schedule through `run_case_sharded` — the full
//!   cross-layer DST oracle set under N > 1 shards.
//!
//! Each comparison is over the *full trajectory digest* (every
//! behavior-bearing output field), not summary statistics: a sharded
//! run that reorders even one tie-break fails loudly. These tests are
//! the contract that lets `--shards N` default to on anywhere without
//! re-recording a single golden digest.

use p2p_ce_grid::prelude::*;
use p2p_ce_grid::scenarios;
use p2p_ce_grid::simcore::dst::generate;

/// The non-sequential shard counts of the matrix.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// Full-trajectory digest of a load-balance result: every
/// behavior-bearing field, in a fixed order (the golden-digest
/// fingerprint plus the opt-in fault/overload planes).
fn digest(r: &SimResult) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(r.wait_times.len());
    for &w in &r.wait_times {
        h.write_f64(w);
    }
    for &n in &r.placed_nodes {
        h.write_u64(n.0 as u64);
    }
    h.write_u64(r.route_hops.count());
    h.write_f64(r.route_hops.mean());
    h.write_f64(r.route_hops.max().unwrap_or(-1.0));
    h.write_u64(r.pushes.count());
    h.write_f64(r.pushes.mean());
    h.write_f64(r.pushes.max().unwrap_or(-1.0));
    h.write_u64(r.fallback_placements);
    h.write_f64(r.makespan);
    h.write_u64(r.evictions);
    h.write_u64(r.resubmissions);
    h.write_u64(r.events_fired);
    h.write_u64(r.lost_jobs);
    for &b in &r.node_busy_seconds {
        h.write_f64(b);
    }
    if let Some(rec) = &r.recovery {
        h.write_u64(rec.crashes);
        h.write_u64(rec.killed_running);
        h.write_u64(rec.killed_queued);
        h.write_u64(rec.requeued);
        h.write_u64(rec.permanently_failed);
        h.write_f64(rec.wasted_seconds);
        h.write_u64(u64::from(rec.max_attempts));
    }
    if let Some(ov) = &r.overload {
        h.write_u64(ov.admitted);
        h.write_u64(ov.admission_rejects);
        h.write_u64(ov.shed_admission);
        h.write_u64(ov.shed_queue);
        h.write_u64(ov.push_attempts);
        h.write_u64(ov.max_boundary_depth);
    }
    h.finish()
}

fn quick_scenario() -> LoadBalanceScenario {
    let mut s = default_scenario().scaled_down(10); // 100 nodes
    s.jobs = 400;
    s
}

#[test]
fn fig5_quick_matches_sequential_for_every_shard_count() {
    let s = quick_scenario();
    for choice in SchedulerChoice::ALL {
        let seq = digest(&run_load_balance(&s, choice));
        assert_eq!(
            digest(&run_load_balance_sharded(&s, choice, 1)),
            seq,
            "{choice:?}: shards=1 must be the sequential run"
        );
        for shards in SHARD_COUNTS {
            let got = digest(&run_load_balance_sharded(&s, choice, shards));
            assert_eq!(
                got, seq,
                "{choice:?}: {shards}-shard trajectory diverged from sequential"
            );
        }
    }
}

#[test]
fn fig5_quick_with_eviction_matches_sequential() {
    // Eviction churn exercises the coordinator lane's Evict/Restore
    // events crossing into node-local lanes at window barriers.
    let s = quick_scenario().with_eviction(EvictionConfig::new(900.0));
    let seq = digest(&run_load_balance(&s, SchedulerChoice::CanHet));
    for shards in SHARD_COUNTS {
        let got = digest(&run_load_balance_sharded(
            &s,
            SchedulerChoice::CanHet,
            shards,
        ));
        assert_eq!(got, seq, "{shards}-shard eviction run diverged");
    }
}

#[test]
fn fig7_churn_schedules_match_sequential_for_vanilla_and_adaptive() {
    // Fig7-style high-churn schedules: the rolling-partition scenario
    // keeps zones splitting/merging throughout, so the zone-region
    // oracle partition is repartitioned continuously.
    let spec = scenarios::find("rolling-partition").expect("chaos trio is registered");
    for scheme in ["vanilla", "adaptive"] {
        let mut schedule = spec.compile_for(scheme, 83);
        schedule.nodes = 32;
        let seq = run_schedule(&schedule);
        for shards in SHARD_COUNTS {
            let got = run_schedule_sharded(&schedule, shards);
            assert_eq!(
                got, seq,
                "{scheme}: {shards}-shard schedule report diverged from sequential"
            );
        }
    }
}

/// First generated schedule at or after `start` satisfying `pick`.
fn find_schedule(start: u64, pick: impl Fn(&FaultSchedule) -> bool) -> FaultSchedule {
    (start..start + 500)
        .map(|seed| generate(seed, &ScheduleBudget::smoke()))
        .find(|s| pick(s))
        .expect("schedule grammar produces the requested shape within 500 seeds")
}

#[test]
fn chaos_schedule_case_matches_sequential_for_every_shard_count() {
    // A schedule with the sched crash phase armed (and overload
    // disarmed): both DST stacks run, all cross-layer oracles armed.
    let schedule = find_schedule(1, |s| {
        s.sched_crash_interval.is_some() && s.overload.is_none()
    });
    let seq = run_case(&schedule);
    assert!(
        seq.violations.is_empty(),
        "picked schedule must be green sequentially: {:?}",
        seq.violations
    );
    for shards in SHARD_COUNTS {
        let got = run_case_sharded(&schedule, shards);
        assert_eq!(
            got, seq,
            "{shards}-shard chaos case diverged from sequential"
        );
    }
}

#[test]
fn overload_armed_case_matches_sequential_for_every_shard_count() {
    // The generator never arms overload on its own (it stays out of the
    // fuzzer grammar), so arm it on a generated schedule the same way a
    // trace `overload` directive would.
    let mut schedule = find_schedule(1, |s| s.sched_crash_interval.is_none());
    schedule.overload = Some(p2p_ce_grid::simcore::OverloadRecord {
        slots: 4,
        wait: 900.0,
        burst: 3,
        refill: 0.01,
    });
    schedule.validate().expect("armed schedule stays valid");
    let seq = run_case(&schedule);
    for shards in SHARD_COUNTS {
        let got = run_case_sharded(&schedule, shards);
        assert_eq!(
            got, seq,
            "{shards}-shard overload-armed case diverged from sequential"
        );
    }
}

#[test]
fn oracle_plane_stays_green_and_identical_under_many_shards() {
    // The full DST oracle set under N > 1 shards on a scenario that
    // exercises takeover, replication, and detector oracles together.
    let spec = scenarios::find("rack-storm").expect("rack-storm is registered");
    let mut schedule = spec.compile_for("compact", 83);
    schedule.nodes = 32;
    let seq = run_schedule(&schedule);
    assert!(
        seq.violations.is_empty(),
        "rack-storm/compact must be green: {:?}",
        seq.violations
    );
    for shards in SHARD_COUNTS {
        let got = run_schedule_sharded(&schedule, shards);
        assert_eq!(got.violations, seq.violations, "shards={shards}");
        assert_eq!(got.digest, seq.digest, "shards={shards}");
    }
}
