//! Regression gate over the shrunk-trace corpus.
//!
//! Every `tests/corpus/*.trace` file is a self-contained fault
//! schedule (most of them delta-debugged repros of past bugs, plus
//! hand-derived scenario re-derivations). Each must:
//!
//! * parse,
//! * replay **bit-identically** — two independent runs produce the
//!   same digest,
//! * match the `expect digest=` value recorded in the file, and
//! * report zero invariant violations on the current protocol.
//!
//! To re-record digests after an *intentional* behavior change, run
//!
//! ```text
//! PGRID_PRINT_DIGESTS=1 cargo test --test corpus_replay -- --nocapture
//! ```
//!
//! and copy the printed `expect digest=` lines into the trace files.

use pgrid::fuzz::replay_trace;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_has_at_least_three_traces() {
    assert!(
        corpus_files().len() >= 3,
        "expected >= 3 committed corpus traces, found {:?}",
        corpus_files()
    );
}

#[test]
fn every_corpus_trace_replays_bit_identically_and_clean() {
    let print = std::env::var_os("PGRID_PRINT_DIGESTS").is_some();
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable trace");
        let (schedule, first) = replay_trace(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (_, second) = replay_trace(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        if print {
            println!("{name}: expect digest=0x{:016x}", first.digest);
        }
        assert_eq!(
            first.digest, second.digest,
            "{name}: two replays diverged — the case is not deterministic"
        );
        assert_eq!(first, second, "{name}: replay reports diverged");
        assert!(
            first.violations.is_empty(),
            "{name}: corpus trace violates invariants on the current protocol:\n  {}",
            first.violations.join("\n  ")
        );
        if print {
            // Re-record mode: digests were printed above; skip the
            // recorded-value comparison so every file gets printed.
            continue;
        }
        let expect = schedule
            .expect_digest
            .unwrap_or_else(|| panic!("{name}: trace has no recorded `expect digest=` line"));
        assert_eq!(
            expect, first.digest,
            "{name}: replay digest 0x{:016x} != recorded 0x{expect:016x} — \
             behavior changed; re-record with PGRID_PRINT_DIGESTS=1 if intentional",
            first.digest
        );
    }
}

#[test]
fn corpus_includes_the_rack_crash_storm() {
    let files = corpus_files();
    let storm = files
        .iter()
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_string_lossy()
                .contains("rack_crash_storm")
        })
        .expect("corpus keeps the correlated owner+heir rack-crash storm");
    let text = std::fs::read_to_string(storm).unwrap();
    let (schedule, report) = replay_trace(&text).unwrap();
    assert_eq!(schedule.replication.as_deref(), Some("standby"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // The storm must actually drive the warm-standby machinery: heirs
    // promoting replicas, and the epoch fence rejecting at least one
    // stale replica from a second-choice heir whose copy is older than
    // the dead owner's last acknowledged version.
    let can_report = pgrid::can::dst::run_schedule(&schedule);
    assert!(
        can_report.replica_promotions > 0,
        "storm drove no promotions: {can_report:?}"
    );
    assert!(
        can_report.stale_replica_rejects > 0,
        "storm never exercised the stale-replica fence: {can_report:?}"
    );
}

#[test]
fn corpus_includes_the_seed41_rederivation() {
    let files = corpus_files();
    let seed41 = files
        .iter()
        .find(|p| p.file_name().unwrap().to_string_lossy().contains("seed41"))
        .expect("corpus keeps the historical seed-41 flash-crowd re-derivation");
    let text = std::fs::read_to_string(seed41).unwrap();
    let (schedule, _) = replay_trace(&text).unwrap();
    assert_eq!(schedule.seed, 41);
    assert_eq!(schedule.scheme, "compact");
}
