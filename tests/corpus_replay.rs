//! Regression gate over the shrunk-trace corpus.
//!
//! Every `tests/corpus/*.trace` file is a self-contained fault
//! schedule (most of them delta-debugged repros of past bugs, plus
//! hand-derived scenario re-derivations). Each must:
//!
//! * parse,
//! * replay **bit-identically** — two independent runs produce the
//!   same digest,
//! * match the `expect digest=` value recorded in the file, and
//! * report zero invariant violations on the current protocol.
//!
//! To re-record digests after an *intentional* behavior change, run
//!
//! ```text
//! PGRID_PRINT_DIGESTS=1 cargo test --test corpus_replay -- --nocapture
//! ```
//!
//! and copy the printed `expect digest=` lines into the trace files.

use pgrid::fuzz::replay_trace;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_has_at_least_three_traces() {
    assert!(
        corpus_files().len() >= 3,
        "expected >= 3 committed corpus traces, found {:?}",
        corpus_files()
    );
}

#[test]
fn every_corpus_trace_replays_bit_identically_and_clean() {
    let print = std::env::var_os("PGRID_PRINT_DIGESTS").is_some();
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable trace");
        let (schedule, first) = replay_trace(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (_, second) = replay_trace(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        if print {
            println!("{name}: expect digest=0x{:016x}", first.digest);
        }
        assert_eq!(
            first.digest, second.digest,
            "{name}: two replays diverged — the case is not deterministic"
        );
        assert_eq!(first, second, "{name}: replay reports diverged");
        assert!(
            first.violations.is_empty(),
            "{name}: corpus trace violates invariants on the current protocol:\n  {}",
            first.violations.join("\n  ")
        );
        if print {
            // Re-record mode: digests were printed above; skip the
            // recorded-value comparison so every file gets printed.
            continue;
        }
        let expect = schedule
            .expect_digest
            .unwrap_or_else(|| panic!("{name}: trace has no recorded `expect digest=` line"));
        assert_eq!(
            expect, first.digest,
            "{name}: replay digest 0x{:016x} != recorded 0x{expect:016x} — \
             behavior changed; re-record with PGRID_PRINT_DIGESTS=1 if intentional",
            first.digest
        );
    }
}

#[test]
fn corpus_includes_the_rack_crash_storm() {
    let files = corpus_files();
    let storm = files
        .iter()
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_string_lossy()
                .contains("rack_crash_storm")
        })
        .expect("corpus keeps the correlated owner+heir rack-crash storm");
    let text = std::fs::read_to_string(storm).unwrap();
    let (schedule, report) = replay_trace(&text).unwrap();
    assert_eq!(schedule.replication.as_deref(), Some("standby"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // The storm must actually drive the warm-standby machinery: heirs
    // promoting replicas, and the epoch fence rejecting at least one
    // stale replica from a second-choice heir whose copy is older than
    // the dead owner's last acknowledged version.
    let can_report = pgrid::can::dst::run_schedule(&schedule);
    assert!(
        can_report.replica_promotions > 0,
        "storm drove no promotions: {can_report:?}"
    );
    assert!(
        can_report.stale_replica_rejects > 0,
        "storm never exercised the stale-replica fence: {can_report:?}"
    );
}

/// Loads the corpus trace whose filename contains `needle`, replays
/// it, and returns the schedule plus the executor report.
fn scenario_trace(needle: &str) -> (pgrid::simcore::FaultSchedule, pgrid::can::ScheduleReport) {
    let files = corpus_files();
    let path = files
        .iter()
        .find(|p| p.file_name().unwrap().to_string_lossy().contains(needle))
        .unwrap_or_else(|| panic!("corpus keeps a {needle} trace"));
    let text = std::fs::read_to_string(path).unwrap();
    let (schedule, report) = replay_trace(&text).unwrap();
    assert!(
        schedule.macros.is_empty(),
        "{needle}: corpus traces are committed in expanded primitive form \
         so replay never depends on macro support"
    );
    assert!(
        report.violations.is_empty(),
        "{needle}: {:?}",
        report.violations
    );
    let full = pgrid::can::dst::run_schedule(&schedule);
    (schedule, full)
}

#[test]
fn corpus_includes_the_diurnal_wave() {
    let (schedule, report) = scenario_trace("diurnal-wave");
    assert_eq!(schedule.detector.as_deref(), Some("adaptive"));
    // Six primitive events: a crash near each of the three troughs and
    // a rejoin near each peak.
    assert_eq!(schedule.events.len(), 6);
    assert!(
        report.takeovers > 0,
        "the wave must crash nodes: {report:?}"
    );
    // Every departure is real — the adaptive detector must not expel a
    // single live node while riding the wave.
    assert_eq!(report.live_expulsions, 0, "{report:?}");
    assert_eq!(
        report.final_nodes, schedule.nodes,
        "peaks restore the troughs"
    );
}

#[test]
fn corpus_includes_the_flash_crowd_spike() {
    let (schedule, report) = scenario_trace("flash-crowd-spike");
    // A 14-node join burst minus the 7-node departure wave: net +7.
    assert_eq!(report.final_nodes, schedule.nodes + 7, "{report:?}");
    assert!(
        report.takeovers > 0,
        "the departure wave crashes: {report:?}"
    );
}

#[test]
fn corpus_includes_the_rack_storm() {
    let (schedule, report) = scenario_trace("rack-storm");
    assert_eq!(schedule.replication.as_deref(), Some("standby"));
    // Three racks of four: every expanded event is a crash burst.
    assert_eq!(schedule.events.len(), 3);
    assert!(
        report.replica_promotions > 0,
        "the storm must drive warm-replica promotions: {report:?}"
    );
}

#[test]
fn corpus_includes_the_straggler_drag() {
    let (schedule, report) = scenario_trace("straggler-drag");
    assert_eq!(schedule.degrades.len(), 1, "one straggler link window");
    assert!(report.frozen_drops > 0, "the freezes must fire: {report:?}");
    // Both freezes are shorter than the fail timeout and the slow links
    // are merely slow: suspicions are fine, expulsions are not.
    assert!(report.suspicions > 0, "{report:?}");
    assert_eq!(report.live_expulsions, 0, "{report:?}");
}

#[test]
fn corpus_includes_the_gray_failure() {
    let (schedule, report) = scenario_trace("gray-failure");
    // The macro lowers to a loss-only and a lag-only window over the
    // same span and pair budget.
    assert_eq!(schedule.degrades.len(), 2);
    assert_eq!(schedule.degrades[0].jitter, 0.0);
    assert_eq!(schedule.degrades[1].drop, 0.0);
    assert!(report.dropped_messages > 0, "{report:?}");
    assert_eq!(report.live_expulsions, 0, "{report:?}");
    assert_eq!(
        report.broken_after, 0,
        "limping links must still heal: {report:?}"
    );
}

#[test]
fn corpus_includes_the_relocated_zombie_revival() {
    let (schedule, report) = scenario_trace("relocated-zombie");
    assert_eq!(schedule.partitions.len(), 2, "two rolling windows");
    // Window 1's take-over relocates a node away from its join
    // coordinate; window 2 expels the relocated node. Its revival must
    // probe the zone it last owned (where the expulsion fence lives),
    // not the coordinate — a coordinate probe compares against the
    // absorber's unfenced region and wedges forever.
    assert!(report.live_expulsions > 0, "{report:?}");
    assert_eq!(
        report.revivals, report.live_expulsions,
        "every expelled node revives once the partitions heal: {report:?}"
    );
    assert_eq!(report.final_nodes, schedule.nodes, "{report:?}");
}

#[test]
fn corpus_includes_the_overload_collapse() {
    let files = corpus_files();
    let path = files
        .iter()
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_string_lossy()
                .contains("overload-collapse")
        })
        .expect("corpus keeps the overload-collapse congestion trace");
    let text = std::fs::read_to_string(path).unwrap();
    let (schedule, report) = replay_trace(&text).unwrap();
    assert!(
        schedule.macros.is_empty(),
        "overload-collapse: corpus traces are committed in expanded primitive form"
    );
    let rec = schedule
        .overload
        .expect("the trace arms bounded queues and the retry budget");
    assert!(
        report.violations.is_empty(),
        "overload-collapse: {:?}",
        report.violations
    );
    // The armed run must actually overflow the bounded queues — a
    // trace that never sheds exercises nothing — while the retry
    // budget keeps amplification under the configured bucket ceiling.
    let stats = report
        .overload
        .expect("armed sched phase records overload stats");
    assert!(stats.shed_total() > 0, "no sheds: {stats:?}");
    assert!(
        stats.max_boundary_depth <= rec.slots as u64,
        "bounded queue overflowed: {stats:?}"
    );
    let amp = stats.retry_amplification();
    assert!(
        amp < 1.0 + f64::from(rec.burst),
        "retry amplification {amp} at or above the budget ceiling: {stats:?}"
    );
}

#[test]
fn corpus_replays_bit_identically_under_every_shard_count() {
    // The pinned multi-shard corpus gate: the overload-collapse trace
    // arms both execution stacks (the CAN churn oracle plane and the
    // sched overload phase), so replaying it sharded pins the
    // zone-sharded engine against the same recorded digest that gates
    // the sequential engine — for every shard count.
    let files = corpus_files();
    let path = files
        .iter()
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_string_lossy()
                .contains("overload-collapse")
        })
        .expect("corpus keeps the overload-collapse congestion trace");
    let text = std::fs::read_to_string(path).unwrap();
    let (schedule, seq) = replay_trace(&text).unwrap();
    let expect = schedule
        .expect_digest
        .expect("overload-collapse records an expect digest");
    assert_eq!(seq.digest, expect, "sequential replay drifted");
    for shards in [2usize, 4, 8] {
        let got = pgrid::fuzz::run_case_sharded(&schedule, shards);
        assert_eq!(
            got.digest, expect,
            "shards={shards}: sharded corpus replay digest 0x{:016x} != recorded 0x{expect:016x}",
            got.digest
        );
        assert_eq!(got, seq, "shards={shards}: sharded corpus report diverged");
    }
}

#[test]
fn corpus_includes_the_seed41_rederivation() {
    let files = corpus_files();
    let seed41 = files
        .iter()
        .find(|p| p.file_name().unwrap().to_string_lossy().contains("seed41"))
        .expect("corpus keeps the historical seed-41 flash-crowd re-derivation");
    let text = std::fs::read_to_string(seed41).unwrap();
    let (schedule, _) = replay_trace(&text).unwrap();
    assert_eq!(schedule.seed, 41);
    assert_eq!(schedule.scheme, "compact");
}
